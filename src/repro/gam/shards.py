"""Source-sharded storage: per-source SQLite shards behind the GAM API.

The GAM groups every object, mapping and association by its *source*
(paper §4), which makes source the natural partition key.  This module
splits the monolithic GAM file into per-source shard files composed via
``ATTACH``, so imports, derivations and refreshes of *disjoint* sources
proceed truly in parallel instead of serializing behind the monolithic
engine's single writer lock.

Layout
------

The coordinator file (``genmapper.db``) keeps the full GAM schema — its
``source`` and ``meta`` tables stay authoritative, while its partitioned
tables (``object``, ``source_rel``, ``object_rel``) stay empty — plus the
shard catalog (``shard_catalog`` / ``shard_source`` tables and the
``layout`` / ``shard_catalog_version`` meta keys).  Each shard slot is
one SQLite file beside it (``genmapper.db.shard00.g3.db``: slot 0, image
generation 3) holding the partitioned rows of the sources placed there.
Hot sources get dedicated slots; once ``max_shards`` slots exist, tail
sources group into the least-populated slot, respecting SQLite's
10-database ``ATTACH`` ceiling with headroom for one staging attach.

Reads
-----

Every pooled connection attaches all live shards and shadows the three
partitioned tables with per-connection ``TEMP`` views
(``object = main.object UNION ALL sh0.object UNION ALL ...``), so every
existing SELECT — joins, recursive CTEs, keyset pagination — works
unchanged and lock-free.  Temp views cannot be written, so an unrouted
write fails loudly instead of landing in the wrong place.

Writes
------

Mutating statements are planned from their *statement head* only:
``INSERT INTO object_rel ...`` becomes ``INSERT INTO sh3.object_rel ...``
for the shard owning the innermost :meth:`~GamDatabase.write_scope`
frame's first source (callers already pass the owning source first — a
mapping's ``source1``).  Bodies are never rewritten: an
``INSERT ... SELECT`` pushdown derivation writes one shard while its
SELECT reads the global views.  ``UPDATE``/``DELETE`` on ``object``
route by a single-source scope; on the relationship tables they fan out
across every shard (rows pointing *at* a source live in other sources'
shards).  Each slot has one writer lock; multi-lock sets are acquired
all-or-nothing with backoff, so two transactions scoped to overlapping
source pairs in opposite orders cannot deadlock.  Transactions open with
a deferred ``BEGIN`` so each shard file is write-locked lazily on first
write — the property that lets disjoint-source transactions commit in
parallel.

Ids stay globally unique without coordination: each slot's tables are
``AUTOINCREMENT`` with ``sqlite_sequence`` seeded to a disjoint
:data:`~repro.gam.schema.ID_STRIDE` range (and any row migrated from a
monolithic file keeps its original id, far below every stride).

Copy-on-write image flip
------------------------

Re-importing a live source never mutates the live shard: ``image_flip``
snapshots the slot's file (SQLite backup API) to a staging image, gives
the flipping thread a private connection whose attachments substitute
the staging file, and — only after the re-import commits — swaps the
catalog row in one atomic coordinator transaction and bumps *only that
source's* generation slot.  Readers on other threads keep the old image
attached until their next statement boundary (POSIX keeps the unlinked
file alive for them), so a concurrent reader observes either the old
complete source or the new complete source, never a mix.

Single-process caveat: external writers to *shard* files are not
detected by the ``PRAGMA data_version`` watchdog (it watches the
coordinator file only); the sharded engine assumes one process owns the
store, which is the deployment the web tier and job plane already run.
"""

from __future__ import annotations

import contextlib
import os
import random
import re
import sqlite3
import threading
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
from pathlib import Path

from repro.gam import schema as gam_schema
from repro.gam.database import GamDatabase
from repro.gam.errors import GamSchemaError, GenMapperError
from repro.gam.pool import is_memory_path

#: Default number of shard slots.  SQLite allows 10 attached databases;
#: 8 slots leave headroom for a migration/staging attach and one spare.
DEFAULT_MAX_SHARDS = 8

#: Total seconds a writer spends trying to assemble a multi-lock set
#: before giving up (surfaced as :class:`ShardLockTimeout` instead of a
#: silent deadlock).
LOCK_TIMEOUT = 60.0


class ShardRoutingError(GenMapperError):
    """A write could not be attributed to a shard (or lacks its lock)."""


class ShardLockTimeout(GenMapperError):
    """A writer could not assemble its shard lock set in time."""


class _OwnedLock:
    """Reentrant lock that knows whether the calling thread holds it."""

    __slots__ = ("_lock", "_owner", "_depth")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._owner: int | None = None
        self._depth = 0

    def acquire(self, timeout: float = -1) -> bool:
        ok = self._lock.acquire(timeout=timeout)
        if ok:
            self._owner = threading.get_ident()
            self._depth += 1
        return ok

    def release(self) -> None:
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
        self._lock.release()

    def owned_by_me(self) -> bool:
        return self._owner == threading.get_ident()


class _FanoutResult:
    """Cursor-like result of a statement fanned out across shards.

    Only the attributes write paths actually consume are provided:
    ``rowcount`` sums the per-shard counts; a fanned-out statement has no
    single insert row, so ``lastrowid`` is None.
    """

    __slots__ = ("rowcount", "lastrowid")

    def __init__(self, rowcount: int) -> None:
        self.rowcount = rowcount
        self.lastrowid = None

    def fetchone(self) -> None:
        return None

    def fetchall(self) -> list:
        return []


@dataclass(frozen=True)
class _Slot:
    slot: int
    file: str  # file name relative to the coordinator's directory
    image: int


@dataclass(frozen=True)
class _CatalogState:
    """Immutable snapshot of the shard catalog.

    Published atomically on ``ShardedGamDatabase._state``; readers (the
    statement planner, connection resync) never take a lock, so holders
    of shard locks can never deadlock against catalog mutators.
    """

    version: int
    slots: tuple[_Slot, ...]
    sources: dict[str, int]  # never mutated after publication

    def slot_of(self, name: str) -> int | None:
        return self.sources.get(name)

    def slot_ids(self) -> tuple[int, ...]:
        return tuple(entry.slot for entry in self.slots)

    def entry(self, slot: int) -> _Slot:
        for candidate in self.slots:
            if candidate.slot == slot:
                return candidate
        raise KeyError(slot)


#: Statement-head matcher: mutation verb + first table token.  Only the
#: head is rewritten; SELECT bodies keep reading the unioned temp views.
_HEAD_RE = re.compile(
    r"^\s*(?P<verb>INSERT(?:\s+OR\s+(?:IGNORE|REPLACE|ABORT|FAIL|ROLLBACK))?"
    r"\s+INTO|REPLACE\s+INTO|DELETE\s+FROM|UPDATE(?:\s+OR\s+\w+)?)"
    r"\s+(?P<table>[A-Za-z_][A-Za-z0-9_]*)",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class _Plan:
    """How one mutating statement maps onto the shard layout.

    kind:
      ``main``    — coordinator-only table (``source``, ``meta``, ...)
      ``route``   — shard table, owned by one slot (``sql`` is rewritten)
      ``fanout``  — shard table, runs once per slot (``prefix``/``suffix``
                    re-assemble the statement around a qualified name)
      ``global``  — unparseable / DDL / ``ANALYZE``: all locks, verbatim
      ``vacuum``  — ``VACUUM`` each attached database in turn
    """

    kind: str
    table: str = ""
    slot: int = -1
    sql: str = ""
    prefix: str = ""
    suffix: str = ""

    def for_schema(self, schema: str) -> str:
        return f"{self.prefix}{schema}.{self.table}{self.suffix}"


def _shard_file_name(base_name: str, slot: int, image: int) -> str:
    return f"{base_name}.shard{slot:02d}.g{image}.db"


class ShardCatalog:
    """Placement policy + persistence for the source→shard mapping.

    The catalog itself is the pair of coordinator tables
    (``shard_catalog``, ``shard_source``) plus the
    ``shard_catalog_version`` meta key; this class loads them into an
    immutable :class:`_CatalogState` and computes placements.  All
    mutation goes through :class:`ShardedGamDatabase`, which persists a
    new state before publishing it.
    """

    def __init__(self, directory: Path, base_name: str, max_shards: int) -> None:
        self.directory = directory
        self.base_name = base_name
        self.max_shards = max(1, int(max_shards))

    def resolve(self, file_name: str) -> str:
        return str(self.directory / file_name)

    @staticmethod
    def load(connection: sqlite3.Connection) -> _CatalogState:
        slots = tuple(
            _Slot(slot=int(row[0]), file=str(row[1]), image=int(row[2]))
            for row in connection.execute(
                "SELECT slot, file, image FROM shard_catalog ORDER BY slot"
            )
        )
        sources = {
            str(row[0]): int(row[1])
            for row in connection.execute("SELECT name, slot FROM shard_source")
        }
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'shard_catalog_version'"
        ).fetchone()
        version = int(row[0]) if row is not None else 0
        return _CatalogState(version=version, slots=slots, sources=sources)

    def place(self, state: _CatalogState, name: str) -> tuple[int, bool]:
        """(slot, is_new_slot) for a source not yet in the catalog.

        First-come sources get dedicated slots; past ``max_shards`` the
        least-populated slot becomes a grouped bucket — the graceful
        degradation that keeps >10 live sources inside the ``ATTACH``
        limit with identical query results.
        """
        if len(state.slots) < self.max_shards:
            used = set(state.slot_ids())
            slot = next(i for i in range(self.max_shards) if i not in used)
            return slot, True
        population = {slot: 0 for slot in state.slot_ids()}
        for assigned in state.sources.values():
            population[assigned] = population.get(assigned, 0) + 1
        slot = min(sorted(population), key=lambda s: population[s])
        return slot, False


class ShardedGamDatabase(GamDatabase):
    """The :class:`GamDatabase` API over per-source shard files.

    Construction accepts the same arguments plus ``max_shards``.  Use
    :meth:`GamDatabase.open` to auto-detect the layout of an existing
    file; constructing this class directly on a *populated* monolithic
    file raises (run ``repro migrate-shards`` first).
    """

    sharded = True
    _begin_sql = "BEGIN"

    def __init__(
        self,
        path: str | Path = "",
        create: bool = True,
        pool_size: int | None = None,
        fault_injector: object = None,
        retry_policy: object = None,
        max_shards: int = DEFAULT_MAX_SHARDS,
    ) -> None:
        path_str = str(path)
        if is_memory_path(path_str):
            raise GamSchemaError(
                "sharded storage needs an on-disk database: an in-memory"
                " shard would be private to a single connection"
            )
        target = Path(path_str).resolve()
        self.catalog = ShardCatalog(target.parent, target.name, max_shards)
        self._state = _CatalogState(version=0, slots=(), sources={})
        self._slot_locks: dict[int, _OwnedLock] = {}
        self._main_lock = _OwnedLock()
        self._assign_lock = threading.Lock()
        self._flip_local = threading.local()
        self._plan_local = threading.local()
        super().__init__(
            path_str,
            create=create,
            pool_size=pool_size,
            fault_injector=fault_injector,  # type: ignore[arg-type]
            retry_policy=retry_policy,  # type: ignore[arg-type]
        )
        try:
            self._bootstrap_catalog(create)
        except BaseException:
            self.pool.close()
            raise

    def _bootstrap_catalog(self, create: bool) -> None:
        connection = self.pool.acquire()
        layout = gam_schema.read_layout(connection)
        if layout != gam_schema.LAYOUT_SHARDED:
            for table in gam_schema.SHARD_TABLES:
                row = connection.execute(
                    f"SELECT 1 FROM {table} LIMIT 1"
                ).fetchone()
                if row is not None:
                    raise GamSchemaError(
                        f"{self.path!r} is a populated monolithic database;"
                        " run `repro migrate-shards` to convert it before"
                        " opening it sharded"
                    )
            if not create:
                raise GamSchemaError(
                    f"{self.path!r} does not contain a sharded GAM layout"
                )
            gam_schema.create_catalog_schema(connection)
            gam_schema.write_layout(connection, gam_schema.LAYOUT_SHARDED)
            connection.commit()
        else:
            gam_schema.create_catalog_schema(connection)
        state = ShardCatalog.load(connection)
        missing = [
            entry.file
            for entry in state.slots
            if not Path(self.catalog.resolve(entry.file)).exists()
        ]
        if missing:
            raise GamSchemaError(
                f"shard files missing beside {self.path!r}: {missing!r}"
            )
        self._slot_locks = {entry.slot: _OwnedLock() for entry in state.slots}
        self._state = state

    def _apply_pragmas(self, connection: sqlite3.Connection) -> None:
        super()._apply_pragmas(connection)
        # SQLite cannot enforce a foreign key across attached databases,
        # so shard tables carry no REFERENCES clauses and integrity is
        # checked at the application level (repro.gam.integrity).
        connection.execute("PRAGMA foreign_keys = OFF")

    # -- connection attachment ---------------------------------------------

    def _lease(self) -> sqlite3.Connection:
        private = getattr(self._flip_local, "connection", None)
        if private is not None:
            self._resync_connection(private)
            return private
        connection = self.pool.acquire()
        self._resync_connection(connection)
        return connection

    def _flip_overrides_for(
        self, connection: sqlite3.Connection
    ) -> dict[int, str]:
        if connection is getattr(self._flip_local, "connection", None):
            return getattr(self._flip_local, "overrides", {})
        return {}

    def _resync_connection(
        self,
        connection: sqlite3.Connection,
        overrides: dict[int, str] | None = None,
    ) -> None:
        """Match a connection's attachments to the current catalog.

        Cheap in the common case (one stamp comparison).  Never touches
        attachments mid-transaction — ``ATTACH``/``DETACH`` are illegal
        there — and a ``DETACH`` blocked by an active cursor is simply
        deferred to the next statement boundary: the reader finishes on
        the old image, which is the zero-downtime contract.
        """
        if overrides is None:
            overrides = self._flip_overrides_for(connection)
        meta = self.pool.meta(connection)
        # Another engine instance on the same file (a second pool in this
        # or another thread's GenMapper) grows the catalog through *its*
        # coordinator connections; ours only notice via SQLite's
        # ``data_version``.  The probe is a no-I/O pragma, the meta read
        # behind it runs only when some other connection committed.
        dv_row = connection.execute("PRAGMA data_version").fetchone()
        if meta.get("catalog_probe_dv") != dv_row[0]:
            meta["catalog_probe_dv"] = dv_row[0]
            self._reload_catalog_if_changed(connection)
        state = self._state
        files = {
            entry.slot: self.catalog.resolve(entry.file)
            for entry in state.slots
        }
        files.update(overrides)
        stamp = (state.version, tuple(sorted(overrides.items())))
        if meta.get("shard_stamp") == stamp:
            return
        if connection.in_transaction:
            return
        attached: dict[int, str] = meta.get("shard_attached", {})
        deferred = False
        for slot, current in list(attached.items()):
            if files.get(slot) != current:
                try:
                    connection.execute(f"DETACH DATABASE sh{slot}")
                except sqlite3.OperationalError:
                    deferred = True
                    continue
                del attached[slot]
        if not deferred:
            for slot, wanted in files.items():
                if slot not in attached:
                    connection.execute(
                        f"ATTACH DATABASE ? AS sh{slot}", (wanted,)
                    )
                    attached[slot] = wanted
        arms = tuple(sorted(attached))
        if meta.get("shard_views") != arms:
            for table in gam_schema.SHARD_TABLES:
                connection.execute(f"DROP VIEW IF EXISTS temp.{table}")
                union = " UNION ALL ".join(
                    [f"SELECT * FROM main.{table}"]
                    + [f"SELECT * FROM sh{slot}.{table}" for slot in arms]
                )
                connection.execute(f"CREATE TEMP VIEW {table} AS {union}")
            meta["shard_views"] = arms
        meta["shard_attached"] = attached
        if not deferred:
            meta["shard_stamp"] = stamp

    def _reload_catalog_if_changed(
        self, connection: sqlite3.Connection
    ) -> None:
        """Adopt catalog changes persisted by another engine instance.

        Compares the persisted ``shard_catalog_version`` against the
        published state and republishes from disk when they differ.  The
        reload raises the global cache floor — an external catalog change
        means sources were placed, migrated or image-flipped by a writer
        whose per-source attribution we never saw.  Our *own* catalog
        mutations never take this path: ``_persist_catalog`` publishes
        the new state (under ``_assign_lock``) before releasing it, so
        the version check sees them as already adopted.
        """
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'shard_catalog_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            return
        persisted = int(row[0]) if row is not None else 0
        if persisted == self._state.version:
            return
        with self._assign_lock:
            state = ShardCatalog.load(connection)
            if state.version == self._state.version:
                return
            locks = dict(self._slot_locks)
            for entry in state.slots:
                locks.setdefault(entry.slot, _OwnedLock())
            self._slot_locks = locks
            self._state = state
        self.bump_generation(None)

    def data_generation(self) -> int:
        """The watchdog, extended to every attached shard file.

        The coordinator's ``PRAGMA data_version`` cannot see commits to
        shard files, so each attached schema is polled too; an
        unexplained movement on *any* of them raises the global floor,
        exactly like the base method's contract (see
        :meth:`GamDatabase.data_generation`).  Newly attached slots only
        record a baseline — the attachment itself came from a catalog
        change that was already attributed.
        """
        connection = self._lease()
        meta = self.pool.meta(connection)
        seen = {"main": int(
            connection.execute("PRAGMA data_version").fetchone()[0]
        )}
        for slot in sorted(meta.get("shard_attached", {})):
            row = connection.execute(
                f"PRAGMA sh{slot}.data_version"
            ).fetchone()
            if row is not None:
                seen[f"sh{slot}"] = int(row[0])
        with self._generation_lock:
            last = meta.get("shard_dv_vector")
            mark = meta.get("commit_mark")
            moved = last is not None and any(
                schema in last and value != last[schema]
                for schema, value in seen.items()
            )
            if moved and mark == self._generation:
                self._generation += 1
                self._source_floor = self._generation
            meta["shard_dv_vector"] = seen
            meta["commit_mark"] = self._generation
            return self._generation

    # -- catalog mutation --------------------------------------------------

    def _persist_catalog(
        self,
        statements: list[tuple[str, tuple]],
        bump_sources: Iterable[str],
    ) -> None:
        """Write catalog rows in one coordinator transaction.

        Runs on the thread's *pooled* connection (never the flip's
        private one) under the coordinator lock.  The generation bump
        lands before the commit so pool siblings attribute the
        ``data_version`` movement internally instead of raising the
        global cache floor.
        """
        connection = self.pool.acquire()
        self._acquire_set([self._main_lock])
        try:
            if connection.in_transaction:
                raise ShardRoutingError(
                    "shard catalog cannot change inside an open transaction;"
                    " scope the transaction to its sources up front"
                )
            connection.execute("BEGIN IMMEDIATE")
            try:
                for sql, params in statements:
                    connection.execute(sql, params)
                self.bump_generation(tuple(bump_sources))
                connection.commit()
            except BaseException:
                connection.rollback()
                raise
        finally:
            self._main_lock.release()

    def _create_slot_file(self, slot: int, image: int) -> str:
        file_name = _shard_file_name(self.catalog.base_name, slot, image)
        shard = sqlite3.connect(self.catalog.resolve(file_name))
        try:
            gam_schema.create_shard_schema(shard, slot)
            shard.execute("PRAGMA journal_mode = WAL")
        finally:
            shard.close()
        return file_name

    def ensure_placement(self, names: Iterable[str]) -> None:
        for name in names:
            self._slot_for(name, create=True)

    def _slot_for(self, name: str, create: bool) -> int:
        slot = self._state.slot_of(name)
        if slot is not None:
            return slot
        if not create:
            raise ShardRoutingError(
                f"source {name!r} has no shard assignment inside an open"
                " transaction; name it in the transaction's write_scope"
            )
        with self._assign_lock:
            state = self._state
            slot = state.slot_of(name)
            if slot is not None:
                return slot
            slot, is_new = self.catalog.place(state, name)
            statements = [
                (
                    "INSERT INTO shard_source (name, slot) VALUES (?, ?)",
                    (name, slot),
                ),
            ]
            if is_new:
                file_name = self._create_slot_file(slot, 0)
                statements.append(
                    (
                        "INSERT INTO shard_catalog (slot, file, image)"
                        " VALUES (?, ?, 0)",
                        (slot, file_name),
                    )
                )
                new_slots = tuple(
                    sorted(
                        state.slots + (_Slot(slot, file_name, 0),),
                        key=lambda entry: entry.slot,
                    )
                )
                new_version = state.version + 1
                statements.append(
                    (
                        "INSERT INTO meta (key, value)"
                        " VALUES ('shard_catalog_version', ?)"
                        " ON CONFLICT (key) DO UPDATE SET value ="
                        " excluded.value",
                        (str(new_version),),
                    )
                )
            else:
                new_slots = state.slots
                new_version = state.version
            self._persist_catalog(statements, (name,))
            new_sources = dict(state.sources)
            new_sources[name] = slot
            if is_new:
                self._slot_locks = {**self._slot_locks, slot: _OwnedLock()}
            self._state = _CatalogState(
                version=new_version, slots=new_slots, sources=new_sources
            )
            return slot

    # -- locking -----------------------------------------------------------

    def _all_locks(self) -> list[_OwnedLock]:
        locks = self._slot_locks
        return [self._main_lock] + [locks[slot] for slot in sorted(locks)]

    def _acquire_set(self, locks: list[_OwnedLock]) -> None:
        """Acquire ``locks`` all-or-nothing (deadlock-free by backoff).

        Canonical order (coordinator first, slots ascending) minimizes
        contention, but correctness does not depend on it: a partial
        acquisition is fully released before backing off, so two writers
        wanting overlapping sets in opposite orders cannot hold-and-wait
        each other.  Locks already held by the thread re-enter instantly.
        """
        deadline = time.monotonic() + LOCK_TIMEOUT
        delay = 0.0005
        while True:
            taken: list[_OwnedLock] = []
            for lock in locks:
                if lock.acquire(timeout=0.02):
                    taken.append(lock)
                else:
                    break
            if len(taken) == len(locks):
                return
            for lock in reversed(taken):
                lock.release()
            if time.monotonic() >= deadline:
                raise ShardLockTimeout(
                    f"could not assemble {len(locks)} shard locks within"
                    f" {LOCK_TIMEOUT:.0f}s (a writer is holding a shard for"
                    " too long — likely a stuck image flip)"
                )
            time.sleep(delay + random.uniform(0, delay))
            delay = min(delay * 2, 0.05)

    def _release_set(self, locks: list[_OwnedLock]) -> None:
        for lock in reversed(locks):
            lock.release()

    def _verify_owned(self, locks: list[_OwnedLock], context: str) -> None:
        if all(lock.owned_by_me() for lock in locks):
            return
        raise ShardRoutingError(
            f"statement needs shard locks the open transaction does not"
            f" hold ({context!r}); widen the transaction's write_scope or"
            " pass all_shards=True"
        )

    # -- statement planning ------------------------------------------------

    def _innermost_scope(self) -> tuple[str, ...] | None:
        for frame in reversed(self._scope_frames()):
            if frame:
                return frame
        return None

    def _plan_statement(self, sql: str, create_slots: bool) -> _Plan:
        match = _HEAD_RE.match(sql)
        if match is None:
            head = sql.split(None, 1)
            word = head[0].upper() if head else ""
            if word == "VACUUM":
                return _Plan(kind="vacuum")
            return _Plan(kind="global")
        table = match.group("table").lower()
        if table not in gam_schema.SHARD_TABLES:
            return _Plan(kind="main")
        verb = match.group("verb").upper().split()[0]
        start, end = match.span("table")
        prefix, suffix = sql[:start], sql[end:]
        scope = self._innermost_scope()
        if verb in ("INSERT", "REPLACE"):
            if scope is None:
                raise ShardRoutingError(
                    f"INSERT into sharded table {table!r} outside any"
                    " write_scope: the owning source cannot be inferred"
                )
            slot = self._slot_for(scope[0], create=create_slots)
            return _Plan(
                kind="route",
                table=table,
                slot=slot,
                sql=f"{prefix}sh{slot}.{table}{suffix}",
                prefix=prefix,
                suffix=suffix,
            )
        # UPDATE / DELETE.  ``object`` rows live in their source's shard,
        # so a single-source scope pins the statement to one slot (the
        # importer's coalesce UPDATE, delete_source's object sweep).  The
        # relationship tables fan out regardless: rows *pointing at* a
        # source live in the shards of every source1 that maps to it.
        if table == "object" and scope is not None and len(set(scope)) == 1:
            slot = self._slot_for(scope[0], create=create_slots)
            return _Plan(
                kind="route",
                table=table,
                slot=slot,
                sql=f"{prefix}sh{slot}.{table}{suffix}",
                prefix=prefix,
                suffix=suffix,
            )
        return _Plan(kind="fanout", table=table, prefix=prefix, suffix=suffix)

    def _locks_for_plan(self, plan: _Plan) -> list[_OwnedLock]:
        if plan.kind == "main":
            return [self._main_lock]
        if plan.kind == "route":
            return [self._slot_locks[plan.slot]]
        return self._all_locks()

    def _push_plan(self, sql: str, plan: _Plan) -> None:
        stack = getattr(self._plan_local, "stack", None)
        if stack is None:
            stack = self._plan_local.stack = []
        stack.append((sql, plan))

    def _pop_plan(self) -> None:
        self._plan_local.stack.pop()

    def _current_plan(self, sql: str) -> _Plan:
        stack = getattr(self._plan_local, "stack", None)
        if stack:
            for stashed_sql, plan in reversed(stack):
                if stashed_sql == sql:
                    return plan
        return self._plan_statement(sql, create_slots=False)

    # -- write guards ------------------------------------------------------

    @contextlib.contextmanager
    def _write_guard(self, sql: str) -> Iterator[None]:
        connection = self._lease()
        if connection.in_transaction:
            # Slot assignment (a catalog write) cannot happen mid-flight;
            # plan with create=False so an unknown source raises instead.
            plan = self._plan_statement(sql, create_slots=False)
            self._verify_owned(self._locks_for_plan(plan), context=sql)
            self._push_plan(sql, plan)
            try:
                yield
            finally:
                self._pop_plan()
            return
        plan = self._plan_statement(sql, create_slots=True)
        while True:
            locks = self._locks_for_plan(plan)
            self._acquire_set(locks)
            # A fanout's slot set may have grown between planning and
            # acquisition (another thread registered a source); retake
            # the now-larger set so the statement covers every shard.
            if self._locks_for_plan(plan) == locks:
                break
            self._release_set(locks)
        try:
            self._resync_connection(connection)
            self._push_plan(sql, plan)
            try:
                yield
            finally:
                self._pop_plan()
        finally:
            self._release_set(locks)

    @contextlib.contextmanager
    def _txn_guard(self, all_shards: bool = False) -> Iterator[None]:
        connection = self._lease()
        frames = self._scope_frames()
        names = [name for frame in frames for name in frame]
        if connection.in_transaction:
            self._verify_owned(
                self._txn_locks(all_shards, frames, names, create=False),
                context="nested transaction",
            )
            yield
            return
        while True:
            locks = self._txn_locks(all_shards, frames, names, create=True)
            self._acquire_set(locks)
            if self._txn_locks(all_shards, frames, names, create=False) == locks:
                break
            self._release_set(locks)
        try:
            self._resync_connection(connection)
            yield
        finally:
            self._release_set(locks)

    def _txn_locks(
        self,
        all_shards: bool,
        frames: list[tuple[str, ...]],
        names: list[str],
        create: bool,
    ) -> list[_OwnedLock]:
        if all_shards or not frames:
            # Unattributable writes lock everything — raw SQL issued with
            # no scope stays correct, it just forfeits parallelism.
            return self._all_locks()
        if not names:
            # A neutral scope (write_scope() with no names) marks pure
            # coordinator bookkeeping — import-journal checkpoints, the
            # saved-path registry — which must not wait behind long
            # import transactions holding shard locks.
            return [self._main_lock]
        slots = sorted({self._slot_for(name, create=create) for name in names})
        return [self._slot_locks[slot] for slot in slots]

    # -- statement execution ----------------------------------------------

    def _execute_write(
        self,
        connection: sqlite3.Connection,
        sql: str,
        parameters: tuple,
    ):
        plan = self._current_plan(sql)
        if plan.kind == "vacuum":
            return self._vacuum_all(connection)
        if plan.kind in ("main", "global"):
            return connection.execute(sql, parameters)
        if plan.kind == "route":
            return connection.execute(plan.sql, parameters)
        changed = 0
        for schema in self._fanout_schemas():
            cursor = connection.execute(plan.for_schema(schema), parameters)
            changed += max(cursor.rowcount, 0)
        return _FanoutResult(changed)

    def _executemany_write(
        self,
        connection: sqlite3.Connection,
        sql: str,
        rows: list,
    ):
        plan = self._current_plan(sql)
        if plan.kind in ("main", "global"):
            return connection.executemany(sql, rows)
        if plan.kind == "route":
            return connection.executemany(plan.sql, rows)
        if plan.kind == "vacuum":  # pragma: no cover - nonsensical batch
            raise ShardRoutingError("VACUUM cannot run as a batch statement")
        changed = 0
        for schema in self._fanout_schemas():
            cursor = connection.executemany(plan.for_schema(schema), rows)
            changed += max(cursor.rowcount, 0)
        return _FanoutResult(changed)

    def _fanout_schemas(self) -> list[str]:
        # main's partitioned tables are empty by construction, but a
        # fanned-out DELETE sweeps them too: correctness never depends on
        # that invariant holding.
        return ["main"] + [f"sh{slot}" for slot in sorted(self._slot_locks)]

    def _vacuum_all(self, connection: sqlite3.Connection):
        for schema in self._fanout_schemas():
            connection.execute(f"VACUUM {schema}")
        return _FanoutResult(0)

    # -- copy-on-write image flip -----------------------------------------

    @contextlib.contextmanager
    def image_flip(self, source_name: str) -> Iterator[None]:
        """Re-import ``source_name`` against a staged copy of its shard.

        Inside the block, the calling thread's statements run on a
        private connection whose attachment for the source's slot points
        at a staging copy of the live image; every other thread keeps
        reading the live image.  On success the catalog row flips in one
        atomic coordinator commit and only this source's generation slot
        bumps; on error the staging file is discarded and the live image
        was never touched.
        """
        if getattr(self._flip_local, "connection", None) is not None:
            raise ShardRoutingError("image flips do not nest")
        slot = self._slot_for(source_name, create=True)
        lock = self._slot_locks[slot]
        self._acquire_set([lock])
        staging_path: Path | None = None
        private: sqlite3.Connection | None = None
        try:
            entry = self._state.entry(slot)
            live_path = Path(self.catalog.resolve(entry.file))
            next_image = entry.image + 1
            staging_name = _shard_file_name(
                self.catalog.base_name, slot, next_image
            )
            staging_path = Path(self.catalog.resolve(staging_name))
            source_conn = sqlite3.connect(str(live_path))
            staging_conn = sqlite3.connect(str(staging_path))
            try:
                source_conn.backup(staging_conn)
                staging_conn.execute("PRAGMA journal_mode = WAL")
            finally:
                staging_conn.close()
                source_conn.close()
            self._flip_local.overrides = {slot: str(staging_path)}
            private = sqlite3.connect(
                self.path, check_same_thread=False, isolation_level=None
            )
            private.row_factory = sqlite3.Row
            self._apply_pragmas(private)
            self._resync_connection(
                private, overrides=self._flip_local.overrides
            )
            self._flip_local.connection = private
            yield
            self._flip_local.connection = None
            self._flip_local.overrides = {}
            self.pool.forget(private)
            private.close()
            private = None
            with self._assign_lock:
                state = self._state
                current = state.entry(slot)
                new_version = state.version + 1
                self._persist_catalog(
                    [
                        (
                            "UPDATE shard_catalog SET file = ?, image = ?"
                            " WHERE slot = ?",
                            (staging_name, next_image, slot),
                        ),
                        (
                            "INSERT INTO meta (key, value)"
                            " VALUES ('shard_catalog_version', ?)"
                            " ON CONFLICT (key) DO UPDATE SET value ="
                            " excluded.value",
                            (str(new_version),),
                        ),
                    ],
                    (source_name,),
                )
                new_slots = tuple(
                    replace(e, file=staging_name, image=next_image)
                    if e.slot == slot
                    else e
                    for e in state.slots
                )
                self._state = _CatalogState(
                    version=new_version,
                    slots=new_slots,
                    sources=state.sources,
                )
            # Readers still on the old image hold it open (POSIX unlink
            # semantics); remove the directory entries best-effort.
            for suffix in ("", "-wal", "-shm"):
                with contextlib.suppress(OSError):
                    os.unlink(str(live_path) + suffix)
        except BaseException:
            self._flip_local.connection = None
            self._flip_local.overrides = {}
            if private is not None:
                self.pool.forget(private)
                with contextlib.suppress(sqlite3.Error):
                    private.close()
            if staging_path is not None:
                for suffix in ("", "-wal", "-shm"):
                    with contextlib.suppress(OSError):
                        os.unlink(str(staging_path) + suffix)
            raise
        finally:
            lock.release()

    # -- introspection -----------------------------------------------------

    def storage_info(self) -> dict[str, object]:
        state = self._state
        population: dict[int, int] = {slot: 0 for slot in state.slot_ids()}
        for slot in state.sources.values():
            population[slot] = population.get(slot, 0) + 1
        return {
            "layout": gam_schema.LAYOUT_SHARDED,
            "path": self.path,
            "shards": {
                "slots": len(state.slots),
                "max_shards": self.catalog.max_shards,
                "catalog_version": state.version,
                "sources": len(state.sources),
                "images": {
                    str(entry.slot): {
                        "file": entry.file,
                        "image": entry.image,
                        "sources": population.get(entry.slot, 0),
                    }
                    for entry in state.slots
                },
            },
        }

    def shard_placement(
        self, names: Iterable[str]
    ) -> dict[str, int] | None:
        state = self._state
        return {
            name: state.sources[name]
            for name in names
            if name in state.sources
        }

    def table_watermarks(self, spec: dict[str, str]) -> dict[str, object]:
        """Per-slot high-watermarks (see the base method's contract).

        Keys are stringified slot ids so the dicts survive the import
        journal's JSON round-trip unchanged.  A slot created after the
        snapshot resolves to mark 0 downstream — a full (conservative)
        delta for rels placed there, never a skipped one.
        """
        marks: dict[str, object] = {}
        slots = sorted(self._slot_locks)
        for table, id_column in spec.items():
            per_slot: dict[str, int] = {}
            for slot in slots:
                row = self.execute_read(
                    f"SELECT coalesce(max({id_column}), 0)"
                    f" FROM sh{slot}.{table}"
                ).fetchone()
                per_slot[str(slot)] = int(row[0])
            marks[table] = per_slot
        return marks


# -- migration ---------------------------------------------------------------

_MIGRATE_KEY_PREFIX = "migrate_ckpt:"

#: Per-source row selectors used when copying a monolithic database into
#: shard files (``{schema}`` is the database holding the rows).  A
#: relationship — and its associations — lives in the shard of its
#: *source1*, the same placement rule the sharded write planner applies.
_MIGRATE_SELECTS = {
    "object": (
        "SELECT object_id, source_id, accession, text, number"
        " FROM {schema}.object WHERE source_id = ?"
    ),
    "source_rel": (
        "SELECT src_rel_id, source1_id, source2_id, type"
        " FROM {schema}.source_rel WHERE source1_id = ?"
    ),
    "object_rel": (
        "SELECT obj_rel_id, src_rel_id, object1_id, object2_id, evidence"
        " FROM {schema}.object_rel WHERE src_rel_id IN"
        " (SELECT src_rel_id FROM {schema}.source_rel WHERE source1_id = ?)"
    ),
}


def _source_signature(
    connection: sqlite3.Connection, schema: str, source_id: int
) -> dict[str, int]:
    """Row counts of one source's partitioned rows in ``schema``."""
    return {
        table: int(
            connection.execute(
                f"SELECT count(*) FROM ({select.format(schema=schema)})",
                (source_id,),
            ).fetchone()[0]
        )
        for table, select in _MIGRATE_SELECTS.items()
    }


def _plan_migration(
    catalog: ShardCatalog, sources: list
) -> tuple[_CatalogState, dict[str, int]]:
    """Deterministic placement for a full migration.

    Sources walk through the live engine's placement policy in
    ``source_id`` order, so a resumed migration recomputes the identical
    layout without reading any partial state.
    """
    state = _CatalogState(version=0, slots=(), sources={})
    placements: dict[str, int] = {}
    for source in sources:
        slot, is_new = catalog.place(state, source.name)
        placements[source.name] = slot
        slots = state.slots
        if is_new:
            file_name = _shard_file_name(catalog.base_name, slot, 0)
            slots = tuple(
                sorted(
                    slots + (_Slot(slot, file_name, 0),),
                    key=lambda entry: entry.slot,
                )
            )
        sources_map = dict(state.sources)
        sources_map[source.name] = slot
        state = _CatalogState(
            version=state.version + (1 if is_new else 0),
            slots=slots,
            sources=sources_map,
        )
    return state, placements


def migrate_to_shards(
    db: GamDatabase,
    max_shards: int = DEFAULT_MAX_SHARDS,
    resume: bool = True,
) -> dict[str, object]:
    """Convert a populated monolithic database to the sharded layout.

    Copies each source's partitioned rows (original ids preserved) into
    its shard file, checkpointing per source in the coordinator's
    ``meta`` table so a mid-migration crash resumes with the finished
    sources skipped (``resume=True``, the default; ``resume=False``
    recopies everything).  The monolithic rows stay in place until the
    single **finalize transaction**, which records the catalog, marks
    the layout sharded, and deletes the now shard-resident rows — a
    crash anywhere before that commit leaves a valid, complete
    monolithic database, and every source's copy is verified against
    the monolithic rows immediately before the flip.

    The caller must be the only writer for the duration and must reopen
    the database afterwards (:meth:`GamDatabase.open` then detects the
    sharded layout).  Returns a summary dict.
    """
    import json

    if db.sharded:
        raise GamSchemaError("database already uses the sharded layout")
    if is_memory_path(db.path):
        raise GamSchemaError("an in-memory database cannot be sharded")
    target = Path(db.path).resolve()
    catalog = ShardCatalog(target.parent, target.name, max_shards)

    from repro.gam.repository import GamRepository

    sources = GamRepository(db).list_sources()
    state, placements = _plan_migration(catalog, sources)
    for entry in state.slots:
        shard = sqlite3.connect(catalog.resolve(entry.file))
        try:
            gam_schema.create_shard_schema(shard, entry.slot)
            shard.execute("PRAGMA journal_mode = WAL")
        finally:
            shard.close()

    def _checkpoint(name: str) -> dict | None:
        row = db.execute_read(
            "SELECT value FROM meta WHERE key = ?",
            (_MIGRATE_KEY_PREFIX + name,),
        ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except ValueError:
            return None

    def _shard_connection(slot: int) -> sqlite3.Connection:
        """The shard file with the monolithic database attached read-side."""
        entry = state.entry(slot)
        shard = sqlite3.connect(catalog.resolve(entry.file))
        shard.execute("ATTACH DATABASE ? AS mono", (str(target),))
        return shard

    migrated = 0
    skipped = 0
    rows_moved = 0
    for source in sources:
        shard = _shard_connection(placements[source.name])
        try:
            mono_sig = _source_signature(shard, "mono", source.source_id)
            shard_sig = _source_signature(shard, "main", source.source_id)
            if (
                resume
                and shard_sig == mono_sig
                and _checkpoint(source.name) == mono_sig
            ):
                skipped += 1
                continue
            # All three tables copy in one shard-file transaction, so a
            # crash mid-copy rolls the whole source back: per-source
            # shard state is always none-or-all (the delete pass clears
            # a partial copy from an unclean earlier run).
            shard.execute("BEGIN IMMEDIATE")
            try:
                shard.execute(
                    "DELETE FROM main.object_rel WHERE src_rel_id IN"
                    " (SELECT src_rel_id FROM mono.source_rel"
                    "   WHERE source1_id = ?)",
                    (source.source_id,),
                )
                shard.execute(
                    "DELETE FROM main.source_rel WHERE source1_id = ?",
                    (source.source_id,),
                )
                shard.execute(
                    "DELETE FROM main.object WHERE source_id = ?",
                    (source.source_id,),
                )
                for table, select in _MIGRATE_SELECTS.items():
                    cursor = shard.execute(
                        f"INSERT INTO main.{table} "
                        + select.format(schema="mono"),
                        (source.source_id,),
                    )
                    rows_moved += max(cursor.rowcount, 0)
                shard.commit()
            except BaseException:
                shard.rollback()
                raise
            with db.write_scope(), db.transaction():
                db.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)"
                    " ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                    (_MIGRATE_KEY_PREFIX + source.name, json.dumps(mono_sig)),
                )
            migrated += 1
        finally:
            shard.close()

    # Verify every copy against the monolithic rows before the flip
    # (outside the finalize transaction: ATTACH is illegal inside one).
    for source in sources:
        shard = _shard_connection(placements[source.name])
        try:
            mono_sig = _source_signature(shard, "mono", source.source_id)
            shard_sig = _source_signature(shard, "main", source.source_id)
            if shard_sig != mono_sig:
                raise GamSchemaError(
                    f"shard copy of source {source.name!r} does not match"
                    f" the monolithic rows ({shard_sig} != {mono_sig});"
                    " re-run migrate-shards"
                )
        finally:
            shard.close()

    # Catalog tables are created before the finalize transaction —
    # executescript would auto-commit an open one.  Harmless if the
    # flip then fails: empty catalog tables beside a monolithic layout.
    gam_schema.create_catalog_schema(db.pool.acquire())
    # Finalize: one atomic coordinator transaction records the catalog,
    # flips the layout and drops the shard-resident rows.  A crash before
    # the commit leaves the complete monolithic database in place.
    with db.transaction():
        for entry in state.slots:
            db.execute(
                "INSERT OR REPLACE INTO shard_catalog (slot, file, image)"
                " VALUES (?, ?, ?)",
                (entry.slot, entry.file, entry.image),
            )
        for name, slot in state.sources.items():
            db.execute(
                "INSERT OR REPLACE INTO shard_source (name, slot)"
                " VALUES (?, ?)",
                (name, slot),
            )
        db.execute(
            "INSERT INTO meta (key, value)"
            " VALUES ('shard_catalog_version', ?)"
            " ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (str(state.version),),
        )
        gam_schema.write_layout(db.pool.acquire(), gam_schema.LAYOUT_SHARDED)
        for table in ("object_rel", "source_rel", "object"):
            db.execute(f"DELETE FROM {table}")
        db.execute(
            "DELETE FROM meta WHERE key LIKE ?", (_MIGRATE_KEY_PREFIX + "%",)
        )
    return {
        "sources": len(sources),
        "slots": len(state.slots),
        "migrated": migrated,
        "skipped": skipped,
        "rows_moved": rows_moved,
        "layout": gam_schema.LAYOUT_SHARDED,
    }
