"""Portable dump/load of a whole GAM database.

The deployment story needs a way to move the integrated knowledge between
machines and backends (the paper's system sat on MySQL; this repo on
sqlite3; a dump must not care).  The format is JSON-lines with one header
record and one record per row, referencing sources by name and objects by
(source, accession) — i.e. *logical* identity, not numeric ids — so a
load into a fresh database rebuilds identical knowledge regardless of id
assignment, and a dump of that database is equivalent again.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path

from repro.gam.errors import GamSchemaError
from repro.gam.repository import GamRepository

#: Format marker written in the header record.
DUMP_FORMAT = "gam-dump/1"


def dump_records(repository: GamRepository) -> Iterator[dict]:
    """Yield the database as JSON-serializable records."""
    yield {"kind": "header", "format": DUMP_FORMAT}
    sources_by_id = {}
    for source in repository.list_sources():
        sources_by_id[source.source_id] = source
        yield {
            "kind": "source",
            "name": source.name,
            "content": source.content.value,
            "structure": source.structure.value,
            "release": source.release,
            "imported_at": source.imported_at,
        }
    for source in sources_by_id.values():
        for obj in repository.objects_of(source):
            record = {
                "kind": "object",
                "source": source.name,
                "accession": obj.accession,
            }
            if obj.text is not None:
                record["text"] = obj.text
            if obj.number is not None:
                record["number"] = obj.number
            yield record
    for rel in repository.find_source_rels():
        source1 = sources_by_id[rel.source1_id]
        source2 = sources_by_id[rel.source2_id]
        yield {
            "kind": "source_rel",
            "source1": source1.name,
            "source2": source2.name,
            "type": rel.type.value,
            "associations": [
                [assoc.source_accession, assoc.target_accession, assoc.evidence]
                for assoc in repository.associations_of(rel)
            ],
        }


def canonical_snapshot(repository: GamRepository) -> str:
    """An order- and id-independent snapshot of the database's knowledge.

    Serializes every non-header dump record as sorted-key JSON, strips
    volatile fields (``imported_at`` — wall-clock), and sorts the lines.
    Two databases holding identical knowledge produce byte-identical
    snapshots regardless of numeric id assignment or import order —
    the equality the chaos-equivalence tests in ``tests/test_chaos.py``
    assert between a faulty and a fault-free run.
    """
    lines = []
    for record in dump_records(repository):
        if record["kind"] == "header":
            continue
        record = dict(record)
        record.pop("imported_at", None)
        if "associations" in record:
            record["associations"] = sorted(record["associations"])
        lines.append(json.dumps(record, sort_keys=True, ensure_ascii=False))
    lines.sort()
    return "\n".join(lines)


def dump_database(repository: GamRepository, path: str | Path) -> int:
    """Write the database to a JSON-lines dump; returns the record count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in dump_records(repository):
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            count += 1
    return count


def load_database(repository: GamRepository, path: str | Path) -> int:
    """Load a dump into a repository (idempotent); returns records read.

    The target database may be empty or already populated: sources,
    objects and associations merge under the usual duplicate-elimination
    rules.
    """
    path = Path(path)
    count = 0
    db = repository.db
    if db.sharded:
        # Shard assignment persists through its own coordinator commit,
        # which is illegal inside the load's transaction — pre-scan the
        # dump's source records and place them up front.
        with path.open("r", encoding="utf-8") as handle:
            names = [
                record["name"]
                for record in (
                    json.loads(line) for line in handle if line.strip()
                )
                if record.get("kind") == "source"
            ]
        db.ensure_placement(names)
    with repository.db.transaction():
        with path.open("r", encoding="utf-8") as handle:
            header_seen = False
            pending_objects: dict[str, list[tuple]] = {}
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                count += 1
                kind = record.get("kind")
                if kind == "header":
                    if record.get("format") != DUMP_FORMAT:
                        raise GamSchemaError(
                            f"unsupported dump format: {record.get('format')!r}"
                        )
                    header_seen = True
                elif not header_seen:
                    raise GamSchemaError(
                        f"line {line_number}: dump does not start with a header"
                    )
                elif kind == "source":
                    repository.add_source(
                        record["name"],
                        content=record["content"],
                        structure=record["structure"],
                        release=record.get("release"),
                        imported_at=record.get("imported_at"),
                    )
                elif kind == "object":
                    pending_objects.setdefault(record["source"], []).append(
                        (
                            record["accession"],
                            record.get("text"),
                            record.get("number"),
                        )
                    )
                elif kind == "source_rel":
                    # Flush buffered objects first: associations reference
                    # them by accession.
                    _flush_objects(repository, pending_objects)
                    rel = repository.ensure_source_rel(
                        record["source1"], record["source2"], record["type"]
                    )
                    repository.add_associations(rel, record["associations"])
                else:
                    raise GamSchemaError(
                        f"line {line_number}: unknown dump record kind {kind!r}"
                    )
            _flush_objects(repository, pending_objects)
    return count


def _flush_objects(
    repository: GamRepository, pending: dict[str, list[tuple]]
) -> None:
    for source_name, rows in pending.items():
        repository.add_objects(source_name, rows)
    pending.clear()
