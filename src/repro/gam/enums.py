"""Enumerations of the GAM data model (paper Figure 4).

The GAM model attaches three enumerations to its tables:

* ``SOURCE.content``    — Gene, Protein or Other,
* ``SOURCE.structure``  — Flat or Network,
* ``SOURCE_REL.type``   — Fact, Similarity, Contains, Is-a, Composed,
  Subsumed.

Relationship types split into three families (paper Section 3): *annotation*
relationships imported from cross-references (Fact, Similarity), *structural*
relationships describing the internal organization of a source (Contains,
Is-a) and *derived* relationships computed by GenMapper itself (Composed,
Subsumed).
"""

from __future__ import annotations

import enum


class SourceContent(enum.Enum):
    """Rough content classification of a source (gene/protein/other)."""

    GENE = "Gene"
    PROTEIN = "Protein"
    OTHER = "Other"

    @classmethod
    def parse(cls, value: "str | SourceContent") -> "SourceContent":
        """Return the member for ``value``, accepting names and labels."""
        if isinstance(value, cls):
            return value
        normalized = str(value).strip().lower()
        for member in cls:
            if normalized in (member.value.lower(), member.name.lower()):
                return member
        raise ValueError(f"not a source content type: {value!r}")


class SourceStructure(enum.Enum):
    """Whether a source's objects are organized in a structure.

    ``NETWORK`` marks taxonomies, ontologies and database schemas whose
    objects are linked by structural relationships; ``FLAT`` marks plain
    object collections such as a set of gene accessions.
    """

    FLAT = "Flat"
    NETWORK = "Network"

    @classmethod
    def parse(cls, value: "str | SourceStructure") -> "SourceStructure":
        """Return the member for ``value``, accepting names and labels."""
        if isinstance(value, cls):
            return value
        normalized = str(value).strip().lower()
        for member in cls:
            if normalized in (member.value.lower(), member.name.lower()):
                return member
        raise ValueError(f"not a source structure type: {value!r}")


class RelType(enum.Enum):
    """Type of a source relationship (mapping)."""

    #: Annotation relationship that can be taken as a fact, e.g. the
    #: position of a gene on the genome or a curated cross-reference.
    FACT = "Fact"
    #: Computed annotation relationship, e.g. from sequence alignment or an
    #: attribute matching algorithm; associations carry reduced evidence.
    SIMILARITY = "Similarity"
    #: Containment between a source and its partitions (e.g. GO and its
    #: three sub-taxonomies).
    CONTAINS = "Contains"
    #: Semantic is-a relationship between terms within a taxonomy.
    IS_A = "Is-a"
    #: Derived by composing existing mappings along a mapping path.
    COMPOSED = "Composed"
    #: Derived from the IS_A structure: term -> all subsumed descendants.
    SUBSUMED = "Subsumed"

    @classmethod
    def parse(cls, value: "str | RelType") -> "RelType":
        """Return the member for ``value``, accepting names and labels."""
        if isinstance(value, cls):
            return value
        normalized = str(value).strip().lower().replace("_", "-")
        for member in cls:
            if normalized in (member.value.lower(), member.name.lower().replace("_", "-")):
                return member
        raise ValueError(f"not a relationship type: {value!r}")

    @property
    def is_annotation(self) -> bool:
        """True for relationships imported from cross-references."""
        return self in (RelType.FACT, RelType.SIMILARITY)

    @property
    def is_structural(self) -> bool:
        """True for relationships describing a source's internal structure."""
        return self in (RelType.CONTAINS, RelType.IS_A)

    @property
    def is_derived(self) -> bool:
        """True for relationships computed by GenMapper itself."""
        return self in (RelType.COMPOSED, RelType.SUBSUMED)


#: Relationship types that connect *objects of different sources* and are
#: therefore usable as mapping-path edges by ``Compose`` and the path finder.
MAPPING_TYPES = frozenset(
    {RelType.FACT, RelType.SIMILARITY, RelType.COMPOSED, RelType.SUBSUMED}
)


class CombineMethod(enum.Enum):
    """How ``GenerateView`` combines the per-target mappings.

    ``AND`` extends the view with an inner join per target (objects must have
    an annotation in every target); ``OR`` uses a left outer join (objects
    are kept even when a target has no annotation for them).
    """

    AND = "AND"
    OR = "OR"

    @classmethod
    def parse(cls, value: "str | CombineMethod") -> "CombineMethod":
        """Return the member for ``value``, accepting lowercase names."""
        if isinstance(value, cls):
            return value
        normalized = str(value).strip().upper()
        for member in cls:
            if normalized == member.value:
                return member
        raise ValueError(f"not a combine method: {value!r}")
