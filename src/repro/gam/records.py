"""Plain record types mirroring the four GAM tables (paper Figure 4).

These are lightweight, immutable dataclasses returned by the repository
layer.  They deliberately mirror the relational rows one-to-one so that code
reading them reads like the paper: ``source.content``, ``obj.accession``,
``rel.type``, ``assoc.evidence``.
"""

from __future__ import annotations

import dataclasses

from repro.gam.enums import RelType, SourceContent, SourceStructure


@dataclasses.dataclass(frozen=True, slots=True)
class Source:
    """A row of the SOURCE table.

    A source is any predefined set of objects: a public collection of genes,
    an ontology, or a database schema.
    """

    source_id: int
    name: str
    content: SourceContent
    structure: SourceStructure
    #: Release label of the imported snapshot, used for duplicate
    #: elimination at the source level together with ``name``.
    release: str | None = None
    #: Import date audit information (ISO format).
    imported_at: str | None = None

    def __str__(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True, slots=True)
class GamObject:
    """A row of the OBJECT table.

    Each object carries its source-specific identifier (``accession``),
    optionally accompanied by a textual component (e.g. the object name) or a
    numeric representation.
    """

    object_id: int
    source_id: int
    accession: str
    text: str | None = None
    number: float | None = None

    def __str__(self) -> str:
        return self.accession


@dataclasses.dataclass(frozen=True, slots=True)
class SourceRel:
    """A row of the SOURCE_REL table: a typed relationship between sources.

    A source relationship of an annotation or derived type is a *mapping*
    and typically consists of many object-level associations.
    """

    src_rel_id: int
    source1_id: int
    source2_id: int
    type: RelType

    @property
    def is_mapping(self) -> bool:
        """True when object associations of this rel connect two sources."""
        return self.type.is_annotation or self.type.is_derived


@dataclasses.dataclass(frozen=True, slots=True)
class ObjectRel:
    """A row of the OBJECT_REL table: one association between two objects.

    ``evidence`` captures the computed plausibility of the association; fact
    associations default to ``1.0``.
    """

    obj_rel_id: int
    src_rel_id: int
    object1_id: int
    object2_id: int
    evidence: float = 1.0


@dataclasses.dataclass(frozen=True, slots=True)
class Association:
    """A single object-level association materialized with accessions.

    This is the operator-facing unit: the ``Map`` operator returns
    associations keyed by accession so that views and exports never need to
    resolve internal object ids again.
    """

    source_accession: str
    target_accession: str
    evidence: float = 1.0

    def reversed(self) -> "Association":
        """Return the same association with source and target swapped."""
        return Association(self.target_accession, self.source_accession, self.evidence)
