"""Detailed database statistics — the Section 5 deployment report.

The paper characterizes its deployment by counts: "approx. 2 million
objects of over 60 data sources, and 5 million object associations
organized in over 500 different mappings".  This module produces that
report for any GAM database, enriched with what the model makes cheap to
compute: per-source object counts, per-mapping sizes, cardinality
classes, relationship-type census, and the most-connected hub sources.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.gam.repository import GamRepository


@dataclasses.dataclass(frozen=True, slots=True)
class MappingStat:
    """Size and shape of one stored mapping."""

    source: str
    target: str
    rel_type: str
    associations: int
    cardinality: str


@dataclasses.dataclass(frozen=True, slots=True)
class SourceStat:
    """Per-source census entry."""

    name: str
    content: str
    structure: str
    objects: int
    mappings: int


@dataclasses.dataclass(frozen=True)
class DatabaseStatistics:
    """The full deployment report."""

    sources: tuple[SourceStat, ...]
    mappings: tuple[MappingStat, ...]
    rel_type_census: dict[str, int]
    total_objects: int
    total_associations: int

    def hub_sources(self, k: int = 5) -> list[SourceStat]:
        """The k sources participating in the most mappings."""
        ranked = sorted(self.sources, key=lambda s: (-s.mappings, s.name))
        return ranked[:k]

    def cardinality_census(self) -> Counter[str]:
        """How many mappings fall in each cardinality class."""
        return Counter(stat.cardinality for stat in self.mappings)

    def render(self, max_rows: int = 15) -> str:
        """A fixed-width report for the CLI."""
        lines = [
            f"{len(self.sources)} sources, {self.total_objects} objects,"
            f" {len(self.mappings)} mappings,"
            f" {self.total_associations} associations",
            "",
            f"{'source':<26} {'content':<8} {'structure':<9}"
            f" {'objects':>8} {'mappings':>9}",
        ]
        for stat in self.sources[:max_rows]:
            lines.append(
                f"{stat.name:<26} {stat.content:<8} {stat.structure:<9}"
                f" {stat.objects:>8} {stat.mappings:>9}"
            )
        if len(self.sources) > max_rows:
            lines.append(f"... ({len(self.sources) - max_rows} more sources)")
        lines.append("")
        lines.append("relationship types: " + ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.rel_type_census.items())
        ))
        lines.append("mapping cardinalities: " + ", ".join(
            f"{card}={count}"
            for card, count in sorted(self.cardinality_census().items())
        ))
        return "\n".join(lines)


def collect_statistics(repository: GamRepository) -> DatabaseStatistics:
    """Compute the full deployment report for one database."""
    db = repository.db
    sources_by_id = {s.source_id: s for s in repository.list_sources()}
    mapping_participation: Counter[int] = Counter()
    rel_type_census: Counter[str] = Counter()
    mapping_stats = []
    for rel in repository.find_source_rels():
        rel_type_census[rel.type.value] += 1
        if not rel.is_mapping:
            continue
        mapping_participation[rel.source1_id] += 1
        if rel.source2_id != rel.source1_id:
            mapping_participation[rel.source2_id] += 1
        cardinality = _mapping_cardinality(repository, rel.src_rel_id)
        mapping_stats.append(
            MappingStat(
                source=sources_by_id[rel.source1_id].name,
                target=sources_by_id[rel.source2_id].name,
                rel_type=rel.type.value,
                associations=repository.count_associations(rel),
                cardinality=cardinality,
            )
        )
    source_stats = tuple(
        SourceStat(
            name=source.name,
            content=source.content.value,
            structure=source.structure.value,
            objects=repository.count_objects(source),
            mappings=mapping_participation.get(source.source_id, 0),
        )
        for source in sources_by_id.values()
    )
    counts = db.counts()
    return DatabaseStatistics(
        sources=source_stats,
        mappings=tuple(mapping_stats),
        rel_type_census=dict(rel_type_census),
        total_objects=counts["object"],
        total_associations=counts["object_rel"],
    )


def _mapping_cardinality(repository: GamRepository, src_rel_id: int) -> str:
    """Cardinality class of one stored mapping, computed in SQL."""
    row = repository.db.execute(
        "SELECT max(source_fan) AS s, max(target_fan) AS t FROM ("
        " SELECT count(*) AS source_fan, 1 AS target_fan FROM object_rel"
        "  WHERE src_rel_id = ? GROUP BY object1_id"
        " UNION ALL"
        " SELECT 1, count(*) FROM object_rel"
        "  WHERE src_rel_id = ? GROUP BY object2_id)",
        (src_rel_id, src_rel_id),
    ).fetchone()
    if row is None or row["s"] is None:
        return "1:1"
    source_fans_out = row["s"] > 1
    target_fans_out = row["t"] > 1
    if source_fans_out and target_fans_out:
        return "n:m"
    if source_fans_out:
        return "1:n"
    if target_fans_out:
        return "n:1"
    return "1:1"
