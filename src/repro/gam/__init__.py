"""GAM — the Generic Annotation Model substrate (paper Section 3).

The GAM uniformly represents molecular-biological objects, annotations,
ontologies and the relationships between them in four relational tables:
``SOURCE``, ``OBJECT``, ``SOURCE_REL`` and ``OBJECT_REL``.
"""

from repro.gam.database import GamDatabase
from repro.gam.enums import (
    MAPPING_TYPES,
    CombineMethod,
    RelType,
    SourceContent,
    SourceStructure,
)
from repro.gam.errors import (
    DuplicateSourceError,
    ExportError,
    GamIntegrityError,
    GamSchemaError,
    GenMapperError,
    ImportError_,
    ParseError,
    PathNotFoundError,
    QuerySpecError,
    UnknownMappingError,
    UnknownObjectError,
    UnknownSourceError,
    ViewGenerationError,
)
from repro.gam.dump import (
    canonical_snapshot,
    dump_database,
    dump_records,
    load_database,
)
from repro.gam.integrity import IntegrityReport, IntegrityViolation, check
from repro.gam.maintenance import (
    DeletionReport,
    delete_source,
    drop_derived,
    prune_orphan_objects,
    vacuum,
)
from repro.gam.records import Association, GamObject, ObjectRel, Source, SourceRel
from repro.gam.shards import (
    ShardCatalog,
    ShardedGamDatabase,
    ShardLockTimeout,
    ShardRoutingError,
    migrate_to_shards,
)
from repro.gam.statistics import (
    DatabaseStatistics,
    MappingStat,
    SourceStat,
    collect_statistics,
)
from repro.gam.repository import GamRepository

__all__ = [
    "MAPPING_TYPES",
    "Association",
    "CombineMethod",
    "DatabaseStatistics",
    "DeletionReport",
    "MappingStat",
    "SourceStat",
    "collect_statistics",
    "canonical_snapshot",
    "dump_database",
    "dump_records",
    "load_database",
    "delete_source",
    "drop_derived",
    "prune_orphan_objects",
    "vacuum",
    "DuplicateSourceError",
    "ExportError",
    "GamDatabase",
    "GamIntegrityError",
    "GamObject",
    "GamRepository",
    "GamSchemaError",
    "GenMapperError",
    "ImportError_",
    "IntegrityReport",
    "IntegrityViolation",
    "ObjectRel",
    "ParseError",
    "PathNotFoundError",
    "QuerySpecError",
    "RelType",
    "ShardCatalog",
    "ShardLockTimeout",
    "ShardRoutingError",
    "ShardedGamDatabase",
    "Source",
    "SourceContent",
    "SourceRel",
    "SourceStructure",
    "migrate_to_shards",
    "UnknownMappingError",
    "UnknownObjectError",
    "UnknownSourceError",
    "ViewGenerationError",
    "check",
]
