"""Thread-aware SQLite connection pooling for the central GAM database.

The seed storage layer handed one shared ``sqlite3`` connection (opened
with ``check_same_thread=False``) to every thread.  That is tolerable for
a single-threaded CLI but incorrect under a threaded WSGI server: two
request threads interleave statements inside each other's implicit
transactions, and a ``commit`` issued by one sweeps up the other's
half-done work.

:class:`ConnectionPool` fixes the sharing model:

* **thread-local checkout** — the first :meth:`acquire` on a thread leases
  a connection to that thread; subsequent calls return the same one, so a
  thread's reads always observe its own writes exactly as before;
* **configurable max size** — at most ``max_size`` connections are ever
  opened; leases held by finished threads are reclaimed, and when the pool
  is exhausted by *live* threads, new threads briefly wait and then fall
  back to sharing an existing connection (SQLite's serialized threading
  mode makes that safe — it is exactly the seed behaviour, now the
  degraded case instead of the only case);
* **in-memory degradation** — ``:memory:`` databases get a single shared
  connection regardless of ``max_size``, because every new in-memory
  connection would be a distinct empty database;
* **observability** — checkouts, waits, shared-fallback grants and the
  number of open/leased connections are reported through the default
  metrics registry (``db.pool.*``).

Transaction semantics (savepoints, the serialized writer lock) live one
layer up in :class:`repro.gam.database.GamDatabase`; the pool only manages
connection lifetimes.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Callable

from repro.obs import MetricsRegistry, get_registry

#: Default maximum number of pooled connections for on-disk databases.
DEFAULT_POOL_SIZE = 8

#: Seconds a thread waits for a reclaimable connection before falling back
#: to sharing one (kept short: sticky leases are only freed by thread
#: death, so long waits rarely help).
DEFAULT_SHARE_AFTER = 0.05


def is_memory_path(path: str) -> bool:
    """True when ``path`` names a private in-memory SQLite database."""
    return path == ":memory:" or path == "" or (
        path.startswith("file:") and "mode=memory" in path
    )


class PoolClosedError(RuntimeError):
    """Raised when acquiring from a pool that has been closed."""


class ConnectionPool:
    """A bounded pool of SQLite connections with per-thread affinity.

    Parameters
    ----------
    path:
        Database path; ``:memory:`` pools degrade to one shared connection.
    max_size:
        Upper bound on concurrently open connections (>= 1).
    configure:
        Optional callback invoked once per new connection (pragmas).
    registry:
        Metrics registry; the process default when omitted.
    connect_guard:
        Optional callback invoked before each new connection is opened;
        the fault plane hooks in here (``@CONNECT`` rules) so chaos tests
        can make connection establishment itself fail.
    """

    def __init__(
        self,
        path: str,
        max_size: int = DEFAULT_POOL_SIZE,
        configure: Callable[[sqlite3.Connection], None] | None = None,
        registry: MetricsRegistry | None = None,
        share_after: float = DEFAULT_SHARE_AFTER,
        connect_guard: Callable[[], None] | None = None,
    ) -> None:
        self.path = str(path)
        self.memory = is_memory_path(self.path)
        self.max_size = 1 if self.memory else max(1, int(max_size))
        self._configure = configure
        self._connect_guard = connect_guard
        self._share_after = float(share_after)
        self._registry = registry
        self._lock = threading.Condition()
        self._local = threading.local()
        self._idle: list[sqlite3.Connection] = []
        self._leases: dict[threading.Thread, sqlite3.Connection] = {}
        self._created = 0
        self._share_cursor = 0
        self._closed = False
        self._all: list[sqlite3.Connection] = []
        #: Pool-managed per-connection metadata (see :meth:`meta`).
        self._meta: dict[int, dict] = {}
        if self.memory:
            # One connection IS the database; open it eagerly so the pool
            # never races schema creation.
            self._shared = self._new_connection()
        else:
            self._shared = None

    # -- metrics -----------------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _update_gauges(self) -> None:
        self.registry.gauge("db.pool.connections").set(self._created)
        self.registry.gauge("db.pool.leased").set(len(self._leases))

    # -- connection lifecycle ----------------------------------------------

    def _new_connection(self) -> sqlite3.Connection:
        if self._connect_guard is not None:
            self._connect_guard()
        # isolation_level=None puts the connection in autocommit mode:
        # GamDatabase issues explicit BEGIN/SAVEPOINT statements, so no
        # implicit transaction ever lingers holding the write lock.
        connection = sqlite3.connect(
            self.path,
            check_same_thread=False,
            isolation_level=None,
            uri=self.path.startswith("file:"),
        )
        connection.row_factory = sqlite3.Row
        # A fresh connection may reuse a discarded connection's id();
        # drop any stale metadata so state never leaks across lifetimes.
        self._meta.pop(id(connection), None)
        if self._configure is not None:
            self._configure(connection)
        self._created += 1
        self._all.append(connection)
        self.registry.counter("db.pool.connections_created").inc()
        return connection

    def meta(self, connection: sqlite3.Connection) -> dict:
        """Pool-managed scratch metadata attached to ``connection``.

        ``sqlite3.Connection`` has no ``__dict__``, so layers above the
        pool (generation tracking, shard attach state) cannot hang state
        off the connection object directly — and a bare ``id()``-keyed
        dict of their own would go stale when a discarded connection's id
        is reused by a new one.  The pool owns the lifetime, so it clears
        the entry whenever a connection is discarded or the pool closes.
        Connections not opened by this pool (e.g. a shard image-flip's
        private connection) may use the facility too; their entries are
        dropped by the caller via :meth:`forget`.
        """
        key = id(connection)
        with self._lock:
            entry = self._meta.get(key)
            if entry is None:
                entry = self._meta[key] = {}
            return entry

    def forget(self, connection: sqlite3.Connection) -> None:
        """Drop the metadata entry for a connection closed by the caller."""
        with self._lock:
            self._meta.pop(id(connection), None)

    def acquire(self) -> sqlite3.Connection:
        """The calling thread's connection (leased on first use).

        Never blocks indefinitely: when all ``max_size`` connections are
        leased by live threads, the caller shares one (counted under
        ``db.pool.shared_grants``).
        """
        if self._closed:
            raise PoolClosedError(f"connection pool for {self.path!r} is closed")
        cached = getattr(self._local, "connection", None)
        if cached is not None:
            return cached
        self.registry.counter("db.pool.checkouts").inc()
        if self.memory:
            self._local.connection = self._shared
            return self._shared
        with self._lock:
            connection = self._checkout_locked()
            self._update_gauges()
        self._local.connection = connection
        return connection

    def _checkout_locked(self) -> sqlite3.Connection:
        connection = self._take_idle_or_create()
        if connection is None:
            # Every connection is leased by a live thread.  Wait briefly
            # for thread churn, then degrade to sharing.
            self.registry.counter("db.pool.waits").inc()
            self._lock.wait(self._share_after)
            connection = self._take_idle_or_create()
        if connection is None:
            self.registry.counter("db.pool.shared_grants").inc()
            leased = list(self._leases.values())
            self._share_cursor = (self._share_cursor + 1) % len(leased)
            return leased[self._share_cursor]
        self._leases[threading.current_thread()] = connection
        return connection

    def _take_idle_or_create(self) -> sqlite3.Connection | None:
        if self._idle:
            return self._idle.pop()
        if self._created < self.max_size:
            return self._new_connection()
        self._reclaim_dead_leases()
        if self._idle:
            return self._idle.pop()
        return None

    def _sanitize_locked(
        self, connection: sqlite3.Connection
    ) -> sqlite3.Connection | None:
        """Make a returning lease safe to hand to the next thread.

        A thread can die (or release) with a transaction still open —
        an exception between ``BEGIN`` and ``COMMIT`` that nobody rolled
        back.  Handing that connection out as-is silently grafts the
        next thread's statements onto the abandoned transaction.  Roll
        the leftovers back; a connection that cannot be cleaned is
        closed and forgotten rather than pooled.  Call with the pool
        lock held.
        """
        try:
            if connection.in_transaction:
                self.registry.counter("db.pool.dirty_releases").inc()
                connection.rollback()
            return connection
        except sqlite3.Error:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
            if connection in self._all:
                self._all.remove(connection)
            self._meta.pop(id(connection), None)
            self._created -= 1
            self.registry.counter("db.pool.discarded").inc()
            return None

    def _reclaim_dead_leases(self) -> None:
        dead = [t for t in self._leases if not t.is_alive()]
        for thread in dead:
            connection = self._sanitize_locked(self._leases.pop(thread))
            if connection is not None:
                self._idle.append(connection)
        if dead:
            self._lock.notify_all()

    def release(self) -> None:
        """Return the calling thread's leased connection to the pool.

        Optional: leases are reclaimed automatically when threads finish;
        long-lived worker threads can release explicitly between tasks.
        Shared (fallback) grants and the in-memory connection are no-ops.
        An open transaction on the lease is rolled back before the
        connection is pooled again (see :meth:`_sanitize_locked`).
        """
        cached = getattr(self._local, "connection", None)
        if cached is None or self.memory:
            return
        self._local.connection = None
        with self._lock:
            current = threading.current_thread()
            if self._leases.get(current) is cached:
                del self._leases[current]
                connection = self._sanitize_locked(cached)
                if connection is not None:
                    self._idle.append(connection)
                self._lock.notify_all()
                self._update_gauges()

    def close(self) -> None:
        """Close every connection the pool ever opened."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections, self._all = self._all, []
            self._idle.clear()
            self._leases.clear()
            self._meta.clear()
            self._created = 0
            self._update_gauges()
        for connection in connections:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def size(self) -> int:
        """Number of currently open connections."""
        return self._created

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
