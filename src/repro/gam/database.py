"""Connection management for the central GAM database.

The paper hosts the GAM model in MySQL; this reproduction uses the stdlib
``sqlite3`` module (see DESIGN.md, substitutions).  :class:`GamDatabase`
owns a :class:`~repro.gam.pool.ConnectionPool` that hands each thread its
own connection, applies performance pragmas suited to the workload (WAL
journaling on disk so readers never block behind the writer), serializes
writers behind a process-wide lock, and offers a reentrant savepoint-based
transaction context manager.

Concurrency model (see ``docs/storage.md`` for the full discussion):

* every thread reads on its own pooled connection; on-disk databases run
  in WAL mode, so readers see consistent snapshots and never block;
* all writes funnel through one reentrant lock (``_write_lock``), so two
  threads can never interleave statements inside each other's
  transactions — the bug the seed's single shared connection had;
* connections run in autocommit mode; :meth:`transaction` issues an
  explicit ``BEGIN IMMEDIATE`` and nested calls create savepoints, so an
  inner block rolls back *only its own work* instead of sweeping up (or
  committing) the outer scope.

Data generation (see ``docs/performance.md``): the database maintains a
monotonic :meth:`data_generation` counter that moves forward on every
write — statement-level writes, ``executemany`` batches and committed
:meth:`transaction` blocks all bump it, and commits made through *other*
connections (pool siblings or external processes) are detected via
SQLite's ``PRAGMA data_version``.  The read-through
:class:`repro.cache.MappingCache` stamps every entry with the generation
it was loaded under, so a bumped generation transparently invalidates
stale cached mappings without any explicit flush call.

On top of the global counter sits a **per-source generation vector**:
write paths that know which sources they touch run inside
:meth:`write_scope`, and every bump made in scope advances only the
named sources' generations (:meth:`source_generation`).  Cache entries
whose dependencies name only untouched sources stay warm across a
re-import of an unrelated source.  Untagged writes (raw SQL issued with
no active scope) and commits detected from *external* processes raise a
global floor instead, which conservatively invalidates everything —
correctness never depends on a write being tagged.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import sqlite3
import threading
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.gam import schema as gam_schema
from repro.gam.pool import DEFAULT_POOL_SIZE, ConnectionPool, is_memory_path
from repro.obs.events import record_sql
from repro.reliability.deadline import check_deadline
from repro.reliability.faults import FaultInjector, injector_from_env
from repro.reliability.retry import RetryPolicy, policy_from_env

#: Statements that mutate the database and therefore take the writer lock.
_WRITE_STATEMENTS = frozenset(
    {"INSERT", "UPDATE", "DELETE", "REPLACE", "CREATE", "DROP", "ALTER",
     "VACUUM", "REINDEX", "ANALYZE"}
)


def _is_write_statement(sql: str) -> bool:
    head = sql.split(None, 1)
    return bool(head) and head[0].upper() in _WRITE_STATEMENTS


class GamDatabase:
    """A GAM database on disk or in memory.

    Parameters
    ----------
    path:
        Filesystem path of the database, or ``":memory:"`` (the default)
        for an in-memory database — convenient for tests and examples.
    create:
        When True (default), create the GAM schema if it is missing.
        When False, the schema must already exist and is validated.
    pool_size:
        Maximum number of pooled connections (on-disk databases only;
        in-memory databases always use a single shared connection).
    fault_injector:
        Fault plane consulted before every statement (chaos testing);
        defaults to whatever ``REPRO_FAULTS`` configures, usually none.
    retry_policy:
        Retry/backoff policy wrapped around every statement; transient
        SQLITE_BUSY / disk-I/O failures (injected or real) are retried
        within its budget.  Defaults from ``REPRO_RETRY_*``; pass an
        explicit :class:`~repro.reliability.retry.RetryPolicy` with
        ``max_attempts=1`` to disable retrying.
    """

    #: True on :class:`repro.gam.shards.ShardedGamDatabase`; write paths
    #: that restructure for shard parallelism (the importer's source
    #: pre-registration) key off this instead of ``isinstance``.
    sharded = False

    #: Statement opening an explicit transaction.  The monolithic engine
    #: takes the file write lock eagerly (``IMMEDIATE``) because a single
    #: serialized writer gains nothing from deferral; the sharded engine
    #: overrides this with a deferred ``BEGIN`` so each attached shard
    #: file is write-locked lazily, on first write — the property that
    #: lets transactions on disjoint shards commit in parallel.
    _begin_sql = "BEGIN IMMEDIATE"

    @classmethod
    def open(
        cls,
        path: str | Path = ":memory:",
        create: bool = True,
        pool_size: int | None = None,
        shards: bool | None = None,
        **kwargs: object,
    ) -> "GamDatabase":
        """Open ``path`` with the storage layout it was built under.

        Layout is auto-detected for existing databases (the ``layout``
        meta key written by the sharded engine / ``repro migrate-shards``);
        the ``shards`` argument — defaulting to the ``REPRO_SHARDS``
        environment variable — only decides the layout of *new* on-disk
        databases.  In-memory databases are always monolithic: an
        ``ATTACH``-composed shard would be private to one connection.
        """
        from repro.gam.pool import is_memory_path as _is_memory

        path_str = str(path)
        if not _is_memory(path_str):
            layout = cls._detect_layout(path_str)
            if layout is None:
                if shards is None:
                    shards = os.environ.get(
                        "REPRO_SHARDS", ""
                    ).lower() in {"on", "1", "true", "yes"}
                layout = (
                    gam_schema.LAYOUT_SHARDED
                    if shards
                    else gam_schema.LAYOUT_MONOLITHIC
                )
            if layout == gam_schema.LAYOUT_SHARDED:
                from repro.gam.shards import ShardedGamDatabase

                return ShardedGamDatabase(
                    path_str, create=create, pool_size=pool_size, **kwargs
                )
        return GamDatabase(
            path_str, create=create, pool_size=pool_size, **kwargs
        )

    @staticmethod
    def _detect_layout(path_str: str) -> str | None:
        """Layout of an existing database file, or None for a new one."""
        target = Path(path_str.split("?", 1)[0].removeprefix("file:"))
        if not target.exists() or target.stat().st_size == 0:
            return None
        probe = sqlite3.connect(path_str, uri=path_str.startswith("file:"))
        try:
            has_meta = probe.execute(
                "SELECT name FROM sqlite_master"
                " WHERE type = 'table' AND name = 'meta'"
            ).fetchone()
            if has_meta is None:
                return gam_schema.LAYOUT_MONOLITHIC
            return gam_schema.read_layout(probe)
        finally:
            probe.close()

    def __init__(
        self,
        path: str | Path = ":memory:",
        create: bool = True,
        pool_size: int | None = None,
        fault_injector: FaultInjector | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.path = str(path)
        self._memory = is_memory_path(self.path)
        self._write_lock = threading.RLock()
        self._savepoint_serial = 0
        self._generation_lock = threading.Lock()
        self._generation = 0
        #: Per-source generation vector: source *name* -> generation of the
        #: last tagged write touching it.  ``_source_floor`` is the floor
        #: every source is implicitly at — raised by untagged writes and by
        #: external commits, which cannot be attributed to specific sources.
        self._source_generations: dict[str, int] = {}
        self._source_floor = 0
        #: Thread-local stack of active write scopes (frozensets of source
        #: names) plus the per-transaction tag accumulator.
        self._scope_local = threading.local()
        #: Public and swappable: chaos tests install their own injector /
        #: policy after construction (``db.fault_injector = ...``).
        self.fault_injector = (
            fault_injector if fault_injector is not None else injector_from_env()
        )
        self.retry_policy = (
            retry_policy if retry_policy is not None else policy_from_env()
        )
        # Last ``PRAGMA data_version`` seen per pooled connection (used to
        # notice commits made by *other* connections / external writers)
        # lives in the pool's per-connection metadata (``pool.meta``), so
        # it cannot survive a connection's discard and mis-attribute a
        # fresh connection's first check.
        self.pool = ConnectionPool(
            self.path,
            max_size=pool_size if pool_size is not None else DEFAULT_POOL_SIZE,
            configure=self._apply_pragmas,
            connect_guard=self._guard_connect,
        )
        try:
            connection = self.pool.acquire()
            if create:
                gam_schema.create_schema(connection)
            else:
                gam_schema.validate_schema(connection)
        except BaseException:
            self.pool.close()
            raise

    def _apply_pragmas(self, connection: sqlite3.Connection) -> None:
        cursor = connection.cursor()
        if self._memory:
            # Bulk-import friendly settings; durability is not a goal for
            # a rebuildable warehouse, matching the paper's batch import.
            cursor.execute("PRAGMA journal_mode = MEMORY")
            cursor.execute("PRAGMA synchronous = OFF")
        else:
            # WAL lets pooled readers run while the single writer commits;
            # NORMAL sync is the standard WAL durability/speed tradeoff.
            cursor.execute("PRAGMA journal_mode = WAL")
            cursor.execute("PRAGMA synchronous = NORMAL")
            cursor.execute("PRAGMA busy_timeout = 30000")
        cursor.execute("PRAGMA temp_store = MEMORY")
        cursor.execute("PRAGMA cache_size = -64000")
        cursor.execute("PRAGMA foreign_keys = ON")
        cursor.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The calling thread's pooled connection (row factory: ``Row``)."""
        return self._lease()

    # -- engine seams ------------------------------------------------------
    #
    # The sharded engine (repro.gam.shards.ShardedGamDatabase) reuses every
    # public method of this class by overriding the narrow seams below:
    # how a connection is leased and refreshed (_lease/_on_acquire), which
    # locks a write takes (_write_guard/_txn_guard), and how a mutating
    # statement reaches the file (_execute_write/_executemany_write, where
    # table references are rewritten to shard-qualified names).

    def _lease(self) -> sqlite3.Connection:
        """Lease the thread's connection and let subclasses refresh it."""
        connection = self.pool.acquire()
        self._on_acquire(connection)
        return connection

    def _on_acquire(self, connection: sqlite3.Connection) -> None:
        """Hook run on every lease (sharded: re-sync shard attachments)."""

    @contextlib.contextmanager
    def _write_guard(self, sql: str) -> Iterator[None]:
        """Locks held around one mutating statement (or batch).

        The monolithic engine serializes every writer behind one process
        lock; the sharded engine inspects ``sql`` and takes only the
        affected shard's lock instead.
        """
        with self._write_lock:
            yield

    @contextlib.contextmanager
    def _txn_guard(self, all_shards: bool = False) -> Iterator[None]:
        """Locks held for the duration of a :meth:`transaction` block."""
        with self._write_lock:
            yield

    def _execute_write(
        self,
        connection: sqlite3.Connection,
        sql: str,
        parameters: tuple,
    ):
        """Run one mutating statement (sharded: route/rewrite first)."""
        return connection.execute(sql, parameters)

    def _executemany_write(
        self,
        connection: sqlite3.Connection,
        sql: str,
        rows: list,
    ):
        """Run one mutating batch (sharded: route/rewrite first)."""
        return connection.executemany(sql, rows)

    # -- reliability boundary ---------------------------------------------
    #
    # Every statement passes through _run(): the request deadline is
    # checked, the fault plane is consulted (chaos testing — faults fire
    # *before* the statement executes, so a retried statement never sees
    # partial effects of itself), and transient failures are retried
    # within the policy's budget.

    def _guard(self, operation: str) -> None:
        check_deadline()
        if self.fault_injector is not None:
            self.fault_injector.on_execute(operation)

    def _guard_connect(self) -> None:
        if self.fault_injector is not None:
            self.fault_injector.on_connect()

    def _run(self, operation: str, fn):
        def attempt():
            self._guard(operation)
            return fn()

        if self.retry_policy is None:
            return attempt()
        return self.retry_policy.call(attempt)

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        """Execute a single statement on this thread's connection.

        Mutating statements are serialized behind the writer lock; reads
        run lock-free on the thread's own connection.
        """
        connection = self._lease()
        # Statement boundary: the wide event of the surrounding request
        # (if any) records the statement text + bound-parameter *count*;
        # bind values never leave this layer (redaction by construction).
        record_sql(sql, len(parameters))
        if _is_write_statement(sql):
            with self._write_guard(sql):
                cursor = self._run(
                    sql,
                    lambda: self._execute_write(connection, sql, parameters),
                )
                self.bump_generation()
                return cursor
        return self._run(sql, lambda: connection.execute(sql, parameters))

    def execute_read(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        """Execute a read-only statement on this thread's pooled connection.

        The explicit read path: never takes the writer lock, so queries
        (the web handlers, :class:`repro.operators.sql_engine.SqlViewEngine`)
        proceed while a writer holds a transaction open.
        """
        connection = self._lease()
        record_sql(sql, len(parameters))
        return self._run(sql, lambda: connection.execute(sql, parameters))

    def execute_read_iter(
        self,
        sql: str,
        parameters: tuple = (),
        batch_size: int = 512,
    ) -> Iterator[sqlite3.Row]:
        """Iterate a read-only statement's rows with bounded memory.

        The streaming counterpart of :meth:`execute_read`: rows are
        drained from the cursor in ``batch_size`` batches instead of one
        ``fetchall``, so the HTTP edge can serialize an arbitrarily large
        listing while holding O(batch) rows resident
        (``docs/http_api.md``).  The request deadline is re-checked
        between batches — a consumer that overruns its budget aborts at
        the next batch boundary rather than draining to completion.
        """
        cursor = self.execute_read(sql, parameters)
        while True:
            rows = cursor.fetchmany(batch_size)
            if not rows:
                return
            check_deadline()
            yield from rows

    def executemany(self, sql: str, rows: object) -> sqlite3.Cursor:
        """Execute a statement for every parameter row, atomically.

        Outside an explicit :meth:`transaction` the rows are wrapped in
        one ``BEGIN IMMEDIATE`` block so autocommit mode does not pay one
        commit per row; inside one they simply join it.
        """
        connection = self._lease()
        # Materialize generators: a retried executemany must replay the
        # full row set, not whatever a half-consumed iterator has left.
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)  # type: ignore[arg-type]
        # For batches the recorded count is the number of parameter rows.
        record_sql(sql, len(rows))
        with self._write_guard(sql):
            # Holding the writer lock, an open transaction on this
            # connection can only be this thread's own.
            if connection.in_transaction:
                cursor = self._run(
                    sql, lambda: self._executemany_write(connection, sql, rows)
                )
                self.bump_generation()
                return cursor
            self._run(
                self._begin_sql, lambda: connection.execute(self._begin_sql)
            )
            try:
                cursor = self._run(
                    sql, lambda: self._executemany_write(connection, sql, rows)
                )
                self._run("COMMIT", connection.commit)
            except BaseException:
                connection.rollback()
                raise
            self.bump_generation()
            return cursor

    def executemany_counted(
        self,
        sql: str,
        rows: Iterable[tuple],
        chunk_size: int = 10_000,
    ) -> int:
        """Run a write statement per row and return the rows it changed.

        The concurrency-safe insert counter behind the bulk-ingest path
        (``docs/performance.md``): after ``executemany`` the cursor's
        ``rowcount`` sums only rows the statement actually changed — an
        ``INSERT OR IGNORE`` that hits the unique index contributes zero —
        so the result is exact regardless of what pool-sibling writers do
        to the table in between, unlike a before/after ``COUNT(*)`` delta.

        ``rows`` may be any iterable, including a generator: it is drained
        in chunks of ``chunk_size`` so parser output can stream through
        without materializing an intermediate list.  Like
        :meth:`executemany`, the batch joins an open :meth:`transaction`
        or wraps itself in one ``BEGIN IMMEDIATE`` block.
        """
        connection = self._lease()
        record_sql(sql, 0)  # row count unknown until the stream drains
        iterator = iter(rows)

        def _drain() -> int:
            changed = 0
            while True:
                chunk = list(itertools.islice(iterator, chunk_size))
                if not chunk:
                    return changed
                # Retry per chunk, never around the whole drain: each
                # chunk is a materialized list, so replaying it is safe,
                # while re-running _drain would resume a half-consumed
                # iterator and silently drop rows.
                cursor = self._run(
                    sql,
                    lambda: self._executemany_write(connection, sql, chunk),
                )
                changed += max(cursor.rowcount, 0)

        with self._write_guard(sql):
            if connection.in_transaction:
                changed = _drain()
                self.bump_generation()
                return changed
            self._run(
                self._begin_sql, lambda: connection.execute(self._begin_sql)
            )
            try:
                changed = _drain()
                self._run("COMMIT", connection.commit)
            except BaseException:
                connection.rollback()
                raise
            self.bump_generation()
            return changed

    @contextlib.contextmanager
    def transaction(
        self, all_shards: bool = False
    ) -> Iterator[sqlite3.Connection]:
        """Run a block atomically: commit on success, roll back on error.

        Holds the writer lock for the duration, so concurrent writers are
        serialized and can never interleave statements into this block.
        Reentrant: a nested ``transaction()`` on the same thread opens a
        savepoint and rolls back only its own work on error — it neither
        commits the outer scope early nor discards the outer scope's
        pending statements.

        ``all_shards`` is meaningful only on the sharded engine, where a
        scoped transaction normally locks just the shards of the active
        :meth:`write_scope`: passing True locks every shard up front, for
        blocks whose writes cannot be attributed to the scoped sources
        alone (e.g. ``delete_source`` sweeping dangling cross-shard
        edges).  The monolithic engine has one lock either way.
        """
        connection = self._lease()
        with self._txn_guard(all_shards):
            if connection.in_transaction:
                self._savepoint_serial += 1
                name = f"gam_sp_{self._savepoint_serial}"
                connection.execute(f"SAVEPOINT {name}")
                try:
                    yield connection
                except BaseException:
                    connection.execute(f"ROLLBACK TO SAVEPOINT {name}")
                    connection.execute(f"RELEASE SAVEPOINT {name}")
                    raise
                else:
                    connection.execute(f"RELEASE SAVEPOINT {name}")
            else:
                # Accumulate the scope tags of every bump made inside the
                # block: the commit-time bump must cover exactly the
                # sources written, or a reader that cached mid-transaction
                # (stamped with a post-statement-bump generation, loaded
                # from the pre-commit snapshot) would survive the commit.
                self._scope_local.txn_tags = set()
                self._scope_local.txn_untagged = False
                self._scope_local.txn_wrote = False
                self._run(
                    self._begin_sql,
                    lambda: connection.execute(self._begin_sql),
                )
                try:
                    yield connection
                    # COMMIT is guarded/retried too (WAL commits can see
                    # SQLITE_BUSY); the fault plane fires *before* the
                    # commit, so a retried COMMIT never double-commits.
                    self._run("COMMIT", connection.commit)
                except BaseException:
                    # Never guard ROLLBACK: it must always run, even with
                    # the fault plane raising on every other statement.
                    self._clear_txn_tags()
                    connection.rollback()
                    raise
                else:
                    tags = frozenset(self._scope_local.txn_tags)
                    untagged = self._scope_local.txn_untagged
                    wrote = self._scope_local.txn_wrote
                    self._clear_txn_tags()
                    if untagged:
                        self.bump_generation(None)
                    elif wrote:
                        self.bump_generation(tags)
                    else:
                        # No writes happened inside the block; bump like a
                        # plain write under whatever scope is active.
                        self.bump_generation()

    def commit(self) -> None:
        """Commit this thread's current transaction (no-op outside one)."""
        self._lease().commit()
        self.bump_generation()

    # -- data generation (cache invalidation protocol) --------------------

    _UNSET_SCOPE = object()

    @contextlib.contextmanager
    def write_scope(self, *source_names: str) -> Iterator[None]:
        """Tag every write made in the block with the named sources.

        Bumps made while a scope is active advance only the named sources'
        generations (the per-source generation vector) instead of raising
        the global floor, so cache entries depending on *other* sources
        stay warm.  Scopes nest: the effective tag set is the union of
        every active frame on the thread.  ``write_scope()`` with no names
        marks a *neutral* write — bookkeeping that changes no mapping data
        (import-journal checkpoints, saved-path registry) — which advances
        the clock but invalidates nothing scoped.
        """
        frames = getattr(self._scope_local, "frames", None)
        if frames is None:
            frames = self._scope_local.frames = []
        # Frames keep argument order: the sharded engine routes inserts to
        # the shard of the innermost frame's *first* source (callers pass
        # the owning source first — e.g. a mapping's source1), which a
        # frozenset would erase.  Generation tagging still unions them.
        frames.append(tuple(source_names))
        try:
            yield
        finally:
            frames.pop()

    def _scope_frames(self) -> list[tuple[str, ...]]:
        """The thread's active scope frames, outermost first."""
        frames = getattr(self._scope_local, "frames", None)
        return list(frames) if frames else []

    def _active_scope(self) -> frozenset[str] | None:
        """Union of the thread's scope frames, or None when unscoped."""
        frames = getattr(self._scope_local, "frames", None)
        if not frames:
            return None
        union: set[str] = set()
        for frame in frames:
            union.update(frame)
        return frozenset(union)

    def _record_txn_bump(self, tags: frozenset[str] | None) -> None:
        if not hasattr(self._scope_local, "txn_tags"):
            return
        self._scope_local.txn_wrote = True
        if tags is None:
            self._scope_local.txn_untagged = True
        else:
            self._scope_local.txn_tags |= tags

    def _clear_txn_tags(self) -> None:
        del self._scope_local.txn_tags
        del self._scope_local.txn_untagged
        del self._scope_local.txn_wrote

    def bump_generation(self, sources: object = _UNSET_SCOPE) -> int:
        """Advance the data generation; returns the new value.

        Called automatically on every write path.  With no argument the
        bump is attributed to the thread's active :meth:`write_scope` (or,
        lacking one, raises the global floor — invalidating everything).
        Passing an iterable of source names attributes it explicitly;
        passing ``None`` forces an untagged (floor-raising) bump.
        """
        if sources is GamDatabase._UNSET_SCOPE:
            sources = self._active_scope()
        tags = None if sources is None else frozenset(sources)  # type: ignore[arg-type]
        self._record_txn_bump(tags)
        with self._generation_lock:
            self._generation += 1
            if tags is None:
                self._source_floor = self._generation
            else:
                for name in tags:
                    self._source_generations[name] = self._generation
            return self._generation

    def source_generation(self, name: str) -> int:
        """Generation of the last write touching source ``name``.

        Never below the global floor: untagged writes and external
        commits move every source forward together.
        """
        with self._generation_lock:
            return max(self._source_floor, self._source_generations.get(name, 0))

    def generation_of(self, sources: Iterable[str]) -> int:
        """Max generation across ``sources`` (the scoped freshness bound).

        A cache entry stamped at generation ``g`` whose loader touched
        exactly these sources is fresh iff ``g >= generation_of(sources)``.
        An empty iterable yields the floor alone.
        """
        with self._generation_lock:
            generation = self._source_floor
            for name in sources:
                tagged = self._source_generations.get(name, 0)
                if tagged > generation:
                    generation = tagged
            return generation

    def generation_vector(self) -> dict[str, object]:
        """Snapshot of the per-source generation vector (introspection)."""
        with self._generation_lock:
            return {
                "generation": self._generation,
                "floor": self._source_floor,
                "sources": dict(self._source_generations),
            }

    def data_generation(self) -> int:
        """The current data generation of this database (monotonic).

        Combines two signals:

        * the internal write counter, bumped by every mutating statement,
          batch and committed transaction issued through this object;
        * SQLite's per-connection ``PRAGMA data_version``, which moves
          when a *different* connection commits.

        A moved ``data_version`` is attributed before it invalidates
        anything: when this object's own counter also advanced since the
        connection's last check, the movement is explained by pool-sibling
        writes that the generation vector already carries, and nothing
        extra happens.  Only an *unexplained* movement — an external
        process committed to the shared file — raises the global floor,
        invalidating every scoped cache entry.  The attribution is
        conservative in the safe direction for single-process use; a
        window containing both an internal and an external commit is
        attributed internally (see ``docs/performance.md`` for the
        multi-process caveat).
        """
        connection = self._lease()
        row = connection.execute("PRAGMA data_version").fetchone()
        seen = int(row[0])
        meta = self.pool.meta(connection)
        with self._generation_lock:
            last = meta.get("data_version")
            mark = meta.get("commit_mark")
            if last is not None and seen != last and mark == self._generation:
                # data_version moved with no intervening writes through
                # this object: an external process committed.
                self._generation += 1
                self._source_floor = self._generation
            meta["data_version"] = seen
            meta["commit_mark"] = self._generation
            return self._generation

    def analyze(self) -> None:
        """Refresh the query-planner statistics (``ANALYZE``).

        Join order over the generic OBJECT_REL table is chosen by the
        optimizer from these statistics; call after bulk imports so
        compiled view queries (``repro.operators.sql_engine``) pick
        index-driven plans.  On the sharded engine a bare ``ANALYZE``
        covers every attached shard, so one call suffices there too.
        """
        connection = self._lease()
        with self._write_guard("ANALYZE"):
            self._execute_write(connection, "ANALYZE", ())

    def has_planner_statistics(self) -> bool:
        """True when ``ANALYZE`` has been run on this database."""
        row = self.execute_read(
            "SELECT name FROM sqlite_master"
            " WHERE type = 'table' AND name = 'sqlite_stat1'"
        ).fetchone()
        if row is None:
            return False
        count = self.execute_read("SELECT count(*) FROM sqlite_stat1").fetchone()
        return int(count[0]) > 0

    def close(self) -> None:
        """Close every pooled connection."""
        self.pool.close()

    def __enter__(self) -> "GamDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- statistics ------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Row counts of the four GAM tables.

        Mirrors the deployment statistics the paper reports in Section 5
        (sources, objects, mappings, associations).
        """
        result = {}
        for table in gam_schema.GAM_TABLES:
            row = self.execute_read(f"SELECT count(*) FROM {table}").fetchone()
            result[table] = int(row[0])
        return result

    def table_watermarks(self, spec: dict[str, str]) -> dict[str, object]:
        """High-watermarks for delta refresh (``repro.derived.refresh``).

        ``spec`` maps table name to its id column.  The monolithic engine
        returns one scalar per table — the max id, monotone because rowids
        grow within the single file.  The sharded engine overrides this
        with a per-slot dict per table: each shard allocates ids from its
        own stride, so a single global max would sit above another shard's
        fresh rows and deltas there would be silently skipped.
        """
        marks: dict[str, object] = {}
        for table, id_column in spec.items():
            row = self.execute_read(
                f"SELECT coalesce(max({id_column}), 0) FROM {table}"
            ).fetchone()
            marks[table] = int(row[0])
        return marks

    def storage_info(self) -> dict[str, object]:
        """Storage-layout description for ``/health`` and ``shard status``."""
        return {
            "layout": gam_schema.LAYOUT_MONOLITHIC,
            "path": self.path,
            "shards": None,
        }

    def shard_placement(
        self, names: Iterable[str]
    ) -> dict[str, int] | None:
        """Shard slot per source name, or None on the monolithic engine."""
        return None

    def ensure_placement(self, names: Iterable[str]) -> None:
        """Assign storage placement for sources ahead of a bulk write.

        No-op on the monolithic engine.  The sharded engine creates (and
        persists) shard assignments, which cannot happen inside an open
        transaction — callers that write many sources in one unscoped
        transaction (``repro.gam.dump.load_database``) call this first.
        """
