"""Connection management for the central GAM database.

The paper hosts the GAM model in MySQL; this reproduction uses the stdlib
``sqlite3`` module (see DESIGN.md, substitutions).  :class:`GamDatabase`
owns the connection, applies performance pragmas suited to bulk import, and
offers an explicit transaction context manager.
"""

from __future__ import annotations

import contextlib
import sqlite3
from collections.abc import Iterator
from pathlib import Path

from repro.gam import schema as gam_schema


class GamDatabase:
    """A GAM database on disk or in memory.

    Parameters
    ----------
    path:
        Filesystem path of the database, or ``":memory:"`` (the default)
        for an in-memory database — convenient for tests and examples.
    create:
        When True (default), create the GAM schema if it is missing.
        When False, the schema must already exist and is validated.
    """

    def __init__(self, path: str | Path = ":memory:", create: bool = True) -> None:
        self.path = str(path)
        # check_same_thread=False lets a WSGI worker thread serve queries
        # over a connection opened by the main thread; writes are still
        # serialized by SQLite's internal locking.
        self._connection = sqlite3.connect(self.path, check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        self._apply_pragmas()
        if create:
            gam_schema.create_schema(self._connection)
        else:
            gam_schema.validate_schema(self._connection)

    def _apply_pragmas(self) -> None:
        cursor = self._connection.cursor()
        # Bulk-import friendly settings; durability is not a goal for a
        # rebuildable warehouse, matching the paper's batch import phase.
        cursor.execute("PRAGMA journal_mode = MEMORY")
        cursor.execute("PRAGMA synchronous = OFF")
        cursor.execute("PRAGMA temp_store = MEMORY")
        cursor.execute("PRAGMA cache_size = -64000")
        cursor.execute("PRAGMA foreign_keys = ON")
        cursor.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying sqlite3 connection (row factory: ``sqlite3.Row``)."""
        return self._connection

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        """Execute a single statement on the underlying connection."""
        return self._connection.execute(sql, parameters)

    def executemany(self, sql: str, rows: object) -> sqlite3.Cursor:
        """Execute a statement for every parameter row."""
        return self._connection.executemany(sql, rows)

    @contextlib.contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """Run a block atomically: commit on success, roll back on error."""
        try:
            yield self._connection
        except BaseException:
            self._connection.rollback()
            raise
        else:
            self._connection.commit()

    def commit(self) -> None:
        """Commit the current transaction."""
        self._connection.commit()

    def analyze(self) -> None:
        """Refresh the query-planner statistics (``ANALYZE``).

        Join order over the generic OBJECT_REL table is chosen by the
        optimizer from these statistics; call after bulk imports so
        compiled view queries (``repro.operators.sql_engine``) pick
        index-driven plans.
        """
        self._connection.commit()
        self._connection.execute("ANALYZE")
        self._connection.commit()

    def has_planner_statistics(self) -> bool:
        """True when ``ANALYZE`` has been run on this database."""
        row = self._connection.execute(
            "SELECT name FROM sqlite_master"
            " WHERE type = 'table' AND name = 'sqlite_stat1'"
        ).fetchone()
        if row is None:
            return False
        count = self._connection.execute(
            "SELECT count(*) FROM sqlite_stat1"
        ).fetchone()
        return int(count[0]) > 0

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "GamDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- statistics ------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Row counts of the four GAM tables.

        Mirrors the deployment statistics the paper reports in Section 5
        (sources, objects, mappings, associations).
        """
        result = {}
        for table in gam_schema.GAM_TABLES:
            row = self.execute(f"SELECT count(*) FROM {table}").fetchone()
            result[table] = int(row[0])
        return result
