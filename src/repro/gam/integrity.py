"""Integrity checking for a GAM database.

The GAM schema enforces key and enumeration constraints declaratively; the
checks here cover the cross-table invariants that SQLite cannot express:

* every object association belongs to a source relationship whose endpoint
  sources match the sources of the two associated objects;
* structural relationships (Contains, Is-a) of a source imply the source is
  marked ``Network``;
* evidence values lie in ``[0, 1]``.

``check`` returns a report instead of raising so that callers can decide
whether a violation is fatal (tests) or diagnostic (CLI ``stats``).
"""

from __future__ import annotations

import dataclasses

from repro.gam.database import GamDatabase


@dataclasses.dataclass(frozen=True, slots=True)
class IntegrityViolation:
    """One violated invariant, with a human-readable description."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


@dataclasses.dataclass(frozen=True, slots=True)
class IntegrityReport:
    """Result of an integrity check over a whole GAM database."""

    violations: tuple[IntegrityViolation, ...]

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def __str__(self) -> str:
        if self.ok:
            return "integrity: OK"
        lines = [f"integrity: {len(self.violations)} violation(s)"]
        lines.extend(str(violation) for violation in self.violations)
        return "\n".join(lines)


def check(db: GamDatabase, max_violations: int = 100) -> IntegrityReport:
    """Check all cross-table invariants of a GAM database."""
    violations: list[IntegrityViolation] = []

    def record(rule: str, detail: str) -> bool:
        violations.append(IntegrityViolation(rule, detail))
        return len(violations) >= max_violations

    # 1. Association endpoints must live in the relationship's sources.
    rows = db.execute(
        "SELECT r.obj_rel_id, sr.src_rel_id,"
        "       o1.source_id AS s1, o2.source_id AS s2,"
        "       sr.source1_id AS rs1, sr.source2_id AS rs2"
        " FROM object_rel r"
        " JOIN source_rel sr ON sr.src_rel_id = r.src_rel_id"
        " JOIN object o1 ON o1.object_id = r.object1_id"
        " JOIN object o2 ON o2.object_id = r.object2_id"
        " WHERE o1.source_id != sr.source1_id OR o2.source_id != sr.source2_id"
        " LIMIT ?",
        (max_violations,),
    ).fetchall()
    for row in rows:
        full = record(
            "association-endpoints",
            f"object_rel {row['obj_rel_id']} joins sources"
            f" ({row['s1']}, {row['s2']}) but source_rel {row['src_rel_id']}"
            f" declares ({row['rs1']}, {row['rs2']})",
        )
        if full:
            return IntegrityReport(tuple(violations))

    # 2. Structural relationships require Network structure on the source
    #    that owns the structure (source1 of Contains / the common source of
    #    an intra-source Is-a relationship).
    rows = db.execute(
        "SELECT sr.src_rel_id, sr.type, s.name, s.structure"
        " FROM source_rel sr JOIN source s ON s.source_id = sr.source1_id"
        " WHERE sr.type IN ('Contains', 'Is-a') AND s.structure != 'Network'"
        " LIMIT ?",
        (max_violations,),
    ).fetchall()
    for row in rows:
        full = record(
            "structural-needs-network",
            f"source {row['name']!r} has a {row['type']} relationship"
            f" (source_rel {row['src_rel_id']}) but structure {row['structure']!r}",
        )
        if full:
            return IntegrityReport(tuple(violations))

    # 3. Evidence values are plausibilities in [0, 1].
    rows = db.execute(
        "SELECT obj_rel_id, evidence FROM object_rel"
        " WHERE evidence < 0.0 OR evidence > 1.0 LIMIT ?",
        (max_violations,),
    ).fetchall()
    for row in rows:
        full = record(
            "evidence-range",
            f"object_rel {row['obj_rel_id']} has evidence {row['evidence']}",
        )
        if full:
            return IntegrityReport(tuple(violations))

    # 4. Dangling foreign keys (defence in depth: FK enforcement is a
    #    connection pragma and may have been off during a bulk load).
    #    On the sharded engine these checks carry the whole referential
    #    burden: SQLite cannot enforce a foreign key across attached
    #    databases, so a cross-shard edge (an ``object_rel`` in source A's
    #    shard pointing at source B's objects, or any row referencing the
    #    coordinator's ``source`` table) is declared without REFERENCES
    #    and verified here instead.
    dangling_checks = (
        (
            "object-source-fk",
            "SELECT o.object_id FROM object o"
            " LEFT JOIN source s ON s.source_id = o.source_id"
            " WHERE s.source_id IS NULL LIMIT ?",
            "object {0} references a missing source",
        ),
        (
            "source-rel-source-fk",
            "SELECT sr.src_rel_id FROM source_rel sr"
            " LEFT JOIN source s1 ON s1.source_id = sr.source1_id"
            " LEFT JOIN source s2 ON s2.source_id = sr.source2_id"
            " WHERE s1.source_id IS NULL OR s2.source_id IS NULL LIMIT ?",
            "source_rel {0} references a missing source",
        ),
        (
            "object-rel-source-rel-fk",
            "SELECT r.obj_rel_id FROM object_rel r"
            " LEFT JOIN source_rel sr ON sr.src_rel_id = r.src_rel_id"
            " WHERE sr.src_rel_id IS NULL LIMIT ?",
            "object_rel {0} references a missing source_rel",
        ),
        (
            "object-rel-object-fk",
            "SELECT r.obj_rel_id FROM object_rel r"
            " LEFT JOIN object o1 ON o1.object_id = r.object1_id"
            " LEFT JOIN object o2 ON o2.object_id = r.object2_id"
            " WHERE o1.object_id IS NULL OR o2.object_id IS NULL LIMIT ?",
            "object_rel {0} references a missing object",
        ),
    )
    for rule, sql, template in dangling_checks:
        rows = db.execute(sql, (max_violations,)).fetchall()
        for row in rows:
            if record(rule, template.format(row[0])):
                return IntegrityReport(tuple(violations))

    return IntegrityReport(tuple(violations))
