"""Exception hierarchy for the GAM layer and everything built on top of it.

All errors raised by this library derive from :class:`GenMapperError`, so
callers can catch one type at an integration boundary.  More specific types
exist where the caller can plausibly react differently (e.g. retry an import
after fixing a duplicate accession vs. report a missing mapping to the user).
"""

from __future__ import annotations


class GenMapperError(Exception):
    """Base class for all errors raised by the repro library."""


class GamSchemaError(GenMapperError):
    """The backing database does not contain a valid GAM schema."""


class GamIntegrityError(GenMapperError):
    """A GAM integrity constraint was violated.

    Examples: an object association referencing a nonexistent object, an
    object whose ``source_id`` does not exist, or a source relationship whose
    endpoints disagree with the objects it associates.
    """


class UnknownSourceError(GenMapperError):
    """A source was looked up by name or id and does not exist."""

    def __init__(self, source: object) -> None:
        super().__init__(f"unknown source: {source!r}")
        self.source = source


class UnknownObjectError(GenMapperError):
    """An object was looked up by accession or id and does not exist."""

    def __init__(self, obj: object) -> None:
        super().__init__(f"unknown object: {obj!r}")
        self.obj = obj


class UnknownMappingError(GenMapperError):
    """No mapping (source relationship) exists between two sources.

    The ``Map`` operator raises this when neither a stored mapping nor any
    composable path exists between the requested source and target.
    """

    def __init__(self, source: object, target: object, detail: str = "") -> None:
        message = f"no mapping between {source!r} and {target!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.source = source
        self.target = target


class DuplicateSourceError(GenMapperError):
    """A source with the same name and release already exists."""

    def __init__(self, name: str, release: str | None = None) -> None:
        suffix = f" (release {release})" if release else ""
        super().__init__(f"source already registered: {name!r}{suffix}")
        self.name = name
        self.release = release


class ParseError(GenMapperError):
    """A source file could not be parsed into EAV rows."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class ImportError_(GenMapperError):
    """The generic EAV-to-GAM import step failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`ImportError`.
    """


class ViewGenerationError(GenMapperError):
    """``GenerateView`` received an inconsistent specification."""


class PathNotFoundError(GenMapperError):
    """No mapping path connects two sources in the source graph."""

    def __init__(self, source: object, target: object, via: object = None) -> None:
        message = f"no mapping path from {source!r} to {target!r}"
        if via is not None:
            message = f"{message} via {via!r}"
        super().__init__(message)
        self.source = source
        self.target = target
        self.via = via


class QuerySpecError(GenMapperError):
    """An interactive query specification is invalid."""


class ExportError(GenMapperError):
    """A view or mapping could not be exported in the requested format."""
