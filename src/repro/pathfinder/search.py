"""Mapping-path search over the source graph (paper Section 5.1).

Three search modes mirror the interactive interface:

* :func:`shortest_path` — the automatic mode: the cheapest mapping path
  from a source to a target;
* :func:`shortest_path_via` — "search in the graph for specific paths, for
  example, with a particular intermediate source";
* :func:`k_shortest_paths` — enumerate alternatives when "with a high
  degree of inter-connectivity many paths may be possible", letting the
  user pick one to customize and save.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

import networkx as nx

from repro.gam.errors import PathNotFoundError
from repro.obs import traced

#: A mapping path: the ordered source names it traverses.
MappingPath = tuple[str, ...]


def _require_nodes(graph: nx.MultiGraph, names: Sequence[str]) -> None:
    missing = [name for name in names if name not in graph]
    if missing:
        raise PathNotFoundError(missing[0], "<graph>")


@traced("pathfinder.shortest_path")
def shortest_path(
    graph: nx.MultiGraph, source: str, target: str
) -> MappingPath:
    """The cheapest mapping path from ``source`` to ``target``.

    Raises :class:`PathNotFoundError` when the sources are not connected.
    A path of length 1 (``(source,)`` == target) is returned when source
    and target coincide.
    """
    _require_nodes(graph, (source, target))
    try:
        path = nx.shortest_path(graph, source, target, weight=_min_edge_weight(graph))
    except nx.NetworkXNoPath:
        raise PathNotFoundError(source, target) from None
    return tuple(path)


@traced("pathfinder.shortest_path_via")
def shortest_path_via(
    graph: nx.MultiGraph, source: str, target: str, via: str
) -> MappingPath:
    """The cheapest path forced through an intermediate source.

    The two legs are searched independently and concatenated; the
    intermediate appears exactly once.
    """
    _require_nodes(graph, (source, target, via))
    first = shortest_path(graph, source, via)
    try:
        second = shortest_path(graph, via, target)
    except PathNotFoundError:
        raise PathNotFoundError(source, target, via=via) from None
    return first + second[1:]


@traced("pathfinder.k_shortest_paths")
def k_shortest_paths(
    graph: nx.MultiGraph, source: str, target: str, k: int = 5
) -> list[MappingPath]:
    """Up to ``k`` loop-free paths, cheapest first."""
    _require_nodes(graph, (source, target))
    generator: Iterator[list[str]] = nx.shortest_simple_paths(
        _as_simple_graph(graph), source, target, weight="weight"
    )
    try:
        return [tuple(path) for path in itertools.islice(generator, k)]
    except nx.NetworkXNoPath:
        raise PathNotFoundError(source, target) from None


def path_cost(graph: nx.MultiGraph, path: MappingPath) -> float:
    """Total weight of a path, taking the cheapest parallel edge per hop."""
    weight_of = _min_edge_weight(graph)
    total = 0.0
    for step_source, step_target in zip(path, path[1:]):
        if not graph.has_edge(step_source, step_target):
            raise PathNotFoundError(step_source, step_target)
        data = graph.get_edge_data(step_source, step_target)
        total += min(
            weight_of(step_source, step_target, attrs) for attrs in data.values()
        )
    return total


def validate_path(graph: nx.MultiGraph, path: Sequence[str]) -> MappingPath:
    """Check a manually built path: every hop must be a stored mapping.

    Supports the interactive interface's "manually build and save a path"
    feature — a saved path must remain valid against the current graph.
    """
    if len(path) < 2:
        raise PathNotFoundError(path[0] if path else "<empty>", "<target>")
    _require_nodes(graph, path)
    for step_source, step_target in zip(path, path[1:]):
        if not graph.has_edge(step_source, step_target):
            raise PathNotFoundError(step_source, step_target)
    return tuple(path)


def _min_edge_weight(graph: nx.MultiGraph):
    """Weight callable for multigraph shortest-path: cheapest parallel edge."""

    def weight(__u: str, __v: str, attrs: dict) -> float:
        if isinstance(attrs, dict) and "weight" in attrs:
            return float(attrs["weight"])
        # Multigraph passes {key: attr_dict}; take the cheapest edge.
        return min(float(data.get("weight", 1.0)) for data in attrs.values())

    return weight


def _as_simple_graph(graph: nx.MultiGraph) -> nx.Graph:
    """Collapse parallel edges, keeping the minimum weight per pair."""
    simple = nx.Graph()
    simple.add_nodes_from(graph.nodes)
    for node1, node2, data in graph.edges(data=True):
        if node1 == node2:
            continue
        weight = float(data.get("weight", 1.0))
        if simple.has_edge(node1, node2):
            simple[node1][node2]["weight"] = min(
                simple[node1][node2]["weight"], weight
            )
        else:
            simple.add_edge(node1, node2, weight=weight)
    return simple
