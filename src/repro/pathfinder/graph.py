"""The graph of sources and mappings (paper Section 5.1).

GenMapper "internally manages a graph of all available sources and
mappings" and uses a shortest-path algorithm to determine a mapping path
from a source to any specified target.  This module builds that graph from
the GAM database as an undirected :mod:`networkx` multigraph — undirected
because associations are navigable in both directions.

Edge weights make path search prefer trustworthy mappings: imported Fact
edges cost 1.0, Similarity edges slightly more, derived edges more still,
so a Fact chain of equal length always beats a derived shortcut of the same
hop count while a materialized Composed edge still beats re-deriving a long
chain.
"""

from __future__ import annotations

import networkx as nx

from repro.gam.enums import RelType
from repro.gam.repository import GamRepository

#: Path-search cost per mapping edge, by relationship type.
EDGE_WEIGHTS = {
    RelType.FACT: 1.0,
    RelType.SIMILARITY: 1.25,
    RelType.COMPOSED: 1.5,
    RelType.SUBSUMED: 1.5,
}


def build_source_graph(repository: GamRepository) -> nx.MultiGraph:
    """Build the source/mapping graph from the database.

    Nodes are source names (with the source record as ``source`` data);
    edges are mapping-type relationships (keyed by ``src_rel_id``) with
    ``rel_type``, ``weight`` and ``size`` (association count) attributes.
    Intra-source mappings (e.g. Subsumed) become self-loops, which the
    shortest-path search naturally ignores.
    """
    graph = nx.MultiGraph()
    sources_by_id = {}
    for source in repository.list_sources():
        sources_by_id[source.source_id] = source
        graph.add_node(source.name, source=source)
    for rel in repository.all_mappings():
        source1 = sources_by_id[rel.source1_id]
        source2 = sources_by_id[rel.source2_id]
        graph.add_edge(
            source1.name,
            source2.name,
            key=rel.src_rel_id,
            rel_type=rel.type,
            weight=EDGE_WEIGHTS[rel.type],
            size=repository.count_associations(rel),
        )
    return graph


def connectivity_summary(graph: nx.MultiGraph) -> dict[str, float]:
    """Headline statistics of the source graph (CLI ``stats`` output)."""
    simple_edges = {frozenset(edge[:2]) for edge in graph.edges if edge[0] != edge[1]}
    components = list(nx.connected_components(graph))
    degrees = [degree for __, degree in graph.degree()]
    return {
        "sources": graph.number_of_nodes(),
        "mappings": graph.number_of_edges(),
        "linked_source_pairs": len(simple_edges),
        "connected_components": len(components),
        "largest_component": max((len(c) for c in components), default=0),
        "mean_degree": (sum(degrees) / len(degrees)) if degrees else 0.0,
    }
