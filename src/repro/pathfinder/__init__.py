"""Source graph and mapping-path search (paper Section 5.1)."""

from repro.pathfinder.export import to_dot, to_json, write_graphml
from repro.pathfinder.graph import EDGE_WEIGHTS, build_source_graph, connectivity_summary
from repro.pathfinder.saved import PathRegistry
from repro.pathfinder.search import (
    MappingPath,
    k_shortest_paths,
    path_cost,
    shortest_path,
    shortest_path_via,
    validate_path,
)

__all__ = [
    "EDGE_WEIGHTS",
    "MappingPath",
    "PathRegistry",
    "build_source_graph",
    "connectivity_summary",
    "k_shortest_paths",
    "path_cost",
    "shortest_path",
    "shortest_path_via",
    "to_dot",
    "to_json",
    "validate_path",
    "write_graphml",
]
