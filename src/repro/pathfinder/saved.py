"""Saved mapping paths (paper Section 5.1).

"GenMapper also allows the user to manually build and save a path
customized for specific analysis requirements."  Saved paths are persisted
in the database's ``meta`` table as JSON under ``saved_path:<name>`` keys,
so they survive across sessions against the same GAM database.
"""

from __future__ import annotations

import json

import networkx as nx

from repro.gam.database import GamDatabase
from repro.gam.errors import QuerySpecError
from repro.pathfinder.search import MappingPath, validate_path

_KEY_PREFIX = "saved_path:"


class PathRegistry:
    """Named, persisted mapping paths for one GAM database."""

    def __init__(self, db: GamDatabase) -> None:
        self.db = db

    def save(
        self, name: str, path: MappingPath, graph: nx.MultiGraph | None = None
    ) -> None:
        """Persist a path under a name, optionally validating it first."""
        if not name:
            raise QuerySpecError("a saved path needs a non-empty name")
        if graph is not None:
            path = validate_path(graph, path)
        if len(path) < 2:
            raise QuerySpecError("a saved path needs at least two sources")
        # Neutral write scope: a saved path is bookkeeping, not mapping
        # data — warm cache entries must survive it.
        with self.db.write_scope(), self.db.transaction():
            self.db.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)"
                " ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                (_KEY_PREFIX + name, json.dumps(list(path))),
            )

    def load(self, name: str) -> MappingPath:
        """Load a saved path; raises :class:`QuerySpecError` if unknown."""
        row = self.db.execute(
            "SELECT value FROM meta WHERE key = ?", (_KEY_PREFIX + name,)
        ).fetchone()
        if row is None:
            raise QuerySpecError(f"no saved path named {name!r}")
        return tuple(json.loads(row[0]))

    def delete(self, name: str) -> bool:
        """Remove a saved path; returns False when it did not exist."""
        with self.db.write_scope(), self.db.transaction():
            cursor = self.db.execute(
                "DELETE FROM meta WHERE key = ?", (_KEY_PREFIX + name,)
            )
        return cursor.rowcount > 0

    def names(self) -> list[str]:
        """All saved path names, sorted."""
        rows = self.db.execute(
            "SELECT key FROM meta WHERE key LIKE ?", (_KEY_PREFIX + "%",)
        ).fetchall()
        return sorted(row[0][len(_KEY_PREFIX):] for row in rows)
