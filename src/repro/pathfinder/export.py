"""Export of the source graph for external visualization.

The interactive interface's path-selection step benefits from *seeing* the
graph of sources and mappings (Section 5.1).  This module serializes the
graph built by :func:`repro.pathfinder.graph.build_source_graph` as:

* Graphviz DOT (`to_dot`) — render with ``dot -Tsvg``,
* GraphML (`write_graphml`) — loadable by Cytoscape/Gephi/yEd,
* adjacency JSON (`to_json`) — for web frontends.

Edges carry the relationship type and association count; node shape/color
encode the source's content and structure classification.
"""

from __future__ import annotations

import json
from pathlib import Path

import networkx as nx

from repro.gam.enums import RelType

#: DOT fill colors by content classification.
_CONTENT_COLORS = {
    "Gene": "#cfe8cf",
    "Protein": "#cfd8e8",
    "Other": "#eeeeee",
}

#: DOT edge styles by relationship type.
_EDGE_STYLES = {
    RelType.FACT: "solid",
    RelType.SIMILARITY: "dashed",
    RelType.COMPOSED: "dotted",
    RelType.SUBSUMED: "dotted",
}


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(graph: nx.MultiGraph, title: str = "GenMapper sources") -> str:
    """Serialize the source graph as Graphviz DOT."""
    lines = [
        f"graph {_quote(title)} {{",
        "  layout=neato;",
        "  overlap=false;",
        "  node [style=filled, fontname=Helvetica, fontsize=10];",
        "  edge [fontname=Helvetica, fontsize=8];",
    ]
    for name, data in sorted(graph.nodes(data=True)):
        source = data.get("source")
        content = source.content.value if source else "Other"
        structure = source.structure.value if source else "Flat"
        shape = "box" if structure == "Network" else "ellipse"
        color = _CONTENT_COLORS.get(content, "#eeeeee")
        lines.append(
            f"  {_quote(name)} [shape={shape}, fillcolor={_quote(color)}];"
        )
    for node1, node2, data in sorted(
        graph.edges(data=True), key=lambda edge: (edge[0], edge[1])
    ):
        if node1 == node2:
            continue  # self-loops (Subsumed) clutter the drawing
        rel_type = data.get("rel_type", RelType.FACT)
        style = _EDGE_STYLES.get(rel_type, "solid")
        size = data.get("size", 0)
        label = f"{rel_type.value} ({size})"
        lines.append(
            f"  {_quote(node1)} -- {_quote(node2)}"
            f" [style={style}, label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_graphml(graph: nx.MultiGraph, path: str | Path) -> Path:
    """Write the graph as GraphML (strings only — GraphML-safe types)."""
    export = nx.MultiGraph()
    for name, data in graph.nodes(data=True):
        source = data.get("source")
        export.add_node(
            name,
            content=source.content.value if source else "Other",
            structure=source.structure.value if source else "Flat",
        )
    for node1, node2, key, data in graph.edges(keys=True, data=True):
        rel_type = data.get("rel_type", RelType.FACT)
        export.add_edge(
            node1,
            node2,
            key=key,
            rel_type=rel_type.value,
            size=int(data.get("size", 0)),
            weight=float(data.get("weight", 1.0)),
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    nx.write_graphml(export, path)
    return path


def to_json(graph: nx.MultiGraph) -> str:
    """Serialize nodes and edges as adjacency JSON."""
    nodes = []
    for name, data in sorted(graph.nodes(data=True)):
        source = data.get("source")
        nodes.append(
            {
                "name": name,
                "content": source.content.value if source else "Other",
                "structure": source.structure.value if source else "Flat",
            }
        )
    edges = []
    for node1, node2, data in sorted(
        graph.edges(data=True), key=lambda edge: (edge[0], edge[1])
    ):
        rel_type = data.get("rel_type", RelType.FACT)
        edges.append(
            {
                "source": node1,
                "target": node2,
                "rel_type": rel_type.value,
                "size": int(data.get("size", 0)),
            }
        )
    return json.dumps({"nodes": nodes, "edges": edges}, indent=2)
