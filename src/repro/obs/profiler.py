"""Sampling profiler: periodic stack walks, flamegraph-ready folded output.

Deterministic tracing (``cProfile``) slows the traced code several-fold
and so cannot run in a serving process; a **sampling** profiler walks
every thread's current Python frames ``hz`` times a second from a side
thread (:func:`sys._current_frames`) and counts how often each stack was
seen.  Cost scales with the sampling rate and stack depth, not with the
amount of work profiled, so 100 Hz is safe on a live server.

Output is the *folded stack* format consumed by Brendan Gregg's
``flamegraph.pl`` and by speedscope: one line per distinct stack,
``frame;frame;...;frame <count>``, root first.  Multiply a line's count
by the sampling period to estimate time spent there.

Entry points:

* ``repro profile`` — profiles a scaled ``repro.datagen`` build + import
  + query run and writes the folded stacks (``--folded-out``);
* ``GET /debug/profile?seconds=N`` — profiles the live server for N
  seconds and returns the folded stacks as plain text;
* :class:`SamplingProfiler` directly, as a context manager, anywhere.

When the profiler is *not* running there is nothing to pay for: no
thread, no per-request hook — the disabled-path budget measured in
``tests/test_obs.py`` holds trivially.
"""

from __future__ import annotations

import os
import sys
import threading
from types import FrameType

#: Environment variable overriding the default sampling rate (samples/s).
PROFILE_HZ_ENV_VAR = "REPRO_PROFILE_HZ"

#: Default sampling rate.
DEFAULT_HZ = 100.0

#: Hard cap on frames retained per stack (deeper stacks are truncated at
#: the root end so the leaf — where time is actually spent — survives).
MAX_STACK_DEPTH = 128


def hz_from_env(default: float = DEFAULT_HZ) -> float:
    """Sampling rate from ``REPRO_PROFILE_HZ`` (clamped to [1, 1000])."""
    raw = os.environ.get(PROFILE_HZ_ENV_VAR, "").strip()
    if raw:
        try:
            default = float(raw)
        except ValueError:
            pass
    return min(1000.0, max(1.0, default))


def frame_label(frame: FrameType) -> str:
    """``module:function`` label for one frame, stable across runs."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}"


def stack_key(frame: FrameType | None) -> tuple[str, ...]:
    """The folded-stack identity of a frame chain, root first."""
    labels: list[str] = []
    while frame is not None and len(labels) < MAX_STACK_DEPTH:
        labels.append(frame_label(frame))
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Walk all threads' frames every ``1/hz`` seconds and count stacks.

    Usable as a context manager::

        with SamplingProfiler(hz=200) as prof:
            expensive_work()
        print(prof.folded())
    """

    def __init__(self, hz: float | None = None) -> None:
        self.hz = hz_from_env() if hz is None else min(1000.0, max(1.0, hz))
        self.interval = 1.0 / self.hz
        self._counts: dict[tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None
        self.samples = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._worker is not None:
            return self
        self._stop.clear()
        self._worker = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._worker.start()
        return self

    def stop(self) -> "SamplingProfiler":
        worker = self._worker
        if worker is None:
            return self
        self._stop.set()
        worker.join(timeout=5.0)
        self._worker = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._worker is not None

    # -- sampling ----------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            self.sample_once(skip_thread=own_id)

    def sample_once(self, skip_thread: int | None = None) -> int:
        """Take one sample of every thread (the profiler thread itself is
        skipped — it would otherwise dominate its own report)."""
        frames = sys._current_frames()
        taken = 0
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == skip_thread:
                    continue
                key = stack_key(frame)
                if key:
                    self._counts[key] = self._counts.get(key, 0) + 1
                    taken += 1
            self.samples += 1
        return taken

    # -- reporting ---------------------------------------------------------

    def folded(self) -> str:
        """Folded-stack report: ``frame;frame;... count`` per line,
        hottest stacks first."""
        with self._lock:
            counts = dict(self._counts)
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(
                counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def stats(self) -> dict:
        with self._lock:
            return {
                "hz": self.hz,
                "samples": self.samples,
                "distinct_stacks": len(self._counts),
            }

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self.samples = 0


def profile_for(seconds: float, hz: float | None = None) -> SamplingProfiler:
    """Run a profiler for ``seconds`` wall time and return it (blocking;
    the work being profiled runs on *other* threads — this is what the
    ``GET /debug/profile`` endpoint uses against the live server)."""
    profiler = SamplingProfiler(hz=hz)
    done = threading.Event()
    with profiler:
        done.wait(max(0.0, seconds))
    return profiler
