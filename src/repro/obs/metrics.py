"""Counters, gauges and fixed-bucket histograms (the observability layer's
"how much / how fast" half).

A :class:`MetricsRegistry` hands out named, optionally labelled metric
instances and renders point-in-time :meth:`~MetricsRegistry.snapshot`
dictionaries of plain data — the snapshot shares no mutable state with the
live metrics, so readers (the ``GET /metrics`` endpoint, tests, benchmark
reporters) can never perturb or race the writers.

Histograms use fixed bucket boundaries (default: latency buckets from
0.5 ms to 10 s) and estimate p50/p95/p99 by linear interpolation inside
the bucket containing the requested rank — the standard Prometheus-style
scheme, chosen over exact quantiles so ``observe`` stays O(#buckets) with
bounded memory no matter how many requests a server has seen.

All mutating operations are thread-safe; each metric carries its own lock
so contention stays per-metric, not registry-wide.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

#: Default histogram boundaries (seconds): spans sub-millisecond operator
#: calls up to multi-second bulk imports.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_key(name: str, labels: dict[str, str]) -> str:
    """Canonical ``name{k=v,...}`` identity of one labelled metric."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (in-flight requests, cache size)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` are upper bounds; one implicit overflow bucket catches
    everything above the last boundary.
    """

    __slots__ = ("buckets", "counts", "count", "total", "min", "max",
                 "exemplars", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: Per-bucket ``(label, value, unix_ts)`` of the most recent
        #: observation that carried an exemplar (e.g. a trace id) —
        #: rendered as OpenMetrics exemplars by ``exposition.py``.
        self.exemplars: list[tuple[str, float, float] | None] = [None] * (
            len(self.buckets) + 1
        )
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if exemplar is not None:
                self.exemplars[index] = (str(exemplar), float(value), time.time())

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        Linear interpolation inside the covering bucket; the overflow
        bucket is capped by the observed maximum, so estimates never
        exceed a value actually seen.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                if bucket_count == 0:
                    continue
                lower = self.buckets[index - 1] if index > 0 else (
                    min(self.min or 0.0, self.buckets[0])
                )
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else (self.max if self.max is not None else lower)
                )
                if cumulative + bucket_count >= rank:
                    fraction = (rank - cumulative) / bucket_count
                    return min(lower + (upper - lower) * fraction, upper)
                cumulative += bucket_count
            return self.max if self.max is not None else 0.0

    def export_buckets(self) -> dict:
        """Cumulative bucket counts for Prometheus exposition.

        Returns ``{"buckets": [(le, cumulative, exemplar), ...], "count",
        "sum"}`` where ``le`` is the upper bound as a float or the string
        ``"+Inf"`` for the overflow bucket, under one consistent lock.
        """
        with self._lock:
            counts = list(self.counts)
            exemplars = list(self.exemplars)
            count, total = self.count, self.total
        buckets: list[tuple[float | str, int, tuple | None]] = []
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            bound: float | str = (
                self.buckets[index] if index < len(self.buckets) else "+Inf"
            )
            buckets.append((bound, cumulative, exemplars[index]))
        return {"buckets": buckets, "count": count, "sum": total}

    def summary(self) -> dict:
        """Plain-data digest: count, sum, min/max/mean, p50/p95/p99."""
        with self._lock:
            count, total = self.count, self.total
            low, high = self.min, self.max
        if count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p95": None, "p99": None}
        return {
            "count": count,
            "sum": round(total, 9),
            "min": round(low, 9),
            "max": round(high, 9),
            "mean": round(total / count, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
        }


class MetricsRegistry:
    """Named metric store with get-or-create access and data snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: key -> (base name, labels) so exposition can regroup labelled
        #: series into metric families without re-parsing the keys.
        self._meta: dict[str, tuple[str, dict[str, str]]] = {}

    # -- get-or-create -----------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = _label_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
                self._meta[key] = (name, labels)
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _label_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
                self._meta[key] = (name, labels)
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = _label_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(buckets)
                self._meta[key] = (name, labels)
        return metric

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time copy of every metric as plain dicts/floats.

        The result is fully detached: mutating it (or the registry
        afterwards) affects neither side.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: metric.value for key, metric in sorted(counters.items())},
            "gauges": {key: metric.value for key, metric in sorted(gauges.items())},
            "histograms": {
                key: metric.summary() for key, metric in sorted(histograms.items())
            },
        }

    def stage_timings(self, prefix: str = "span.") -> dict[str, dict]:
        """Summaries of the span-duration histograms (see ``trace.py``).

        Keys are span names with the ``prefix`` stripped — the shape the
        ``/query/explain`` endpoint reports as observed stage timings.
        """
        with self._lock:
            histograms = {
                key: metric
                for key, metric in self._histograms.items()
                if key.startswith(prefix)
            }
        return {
            key[len(prefix):]: metric.summary()
            for key, metric in sorted(histograms.items())
        }

    def collect(self) -> list[tuple[str, str, dict[str, str], object]]:
        """Every live metric as ``(kind, name, labels, metric)`` tuples.

        The structured companion to :meth:`snapshot`: exposition needs
        the base name and label dict separately (to group series into
        families) and the live Histogram objects (for bucket counts and
        exemplars), not the flattened summary keys.
        """
        with self._lock:
            rows: list[tuple[str, str, dict[str, str], object]] = []
            for kind, store in (
                ("counter", self._counters),
                ("gauge", self._gauges),
                ("histogram", self._histograms),
            ):
                for key in sorted(store):
                    name, labels = self._meta.get(key, (key, {}))
                    rows.append((kind, name, dict(labels), store[key]))
        return rows

    def reset(self) -> None:
        """Drop every metric (tests and benchmark isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._meta.clear()


#: The process-wide default registry used by all instrumentation.
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _DEFAULT_REGISTRY
