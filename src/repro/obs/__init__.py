"""Observability: tracing spans, metrics, and WSGI instrumentation.

The subsystem every performance claim in this repo reports through — see
``docs/observability.md`` for the API guide and endpoint reference.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.middleware import ObservabilityMiddleware, route_template
from repro.obs.trace import Span, Tracer, get_tracer, set_tracer, traced

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityMiddleware",
    "Span",
    "Tracer",
    "get_registry",
    "get_tracer",
    "route_template",
    "set_tracer",
    "traced",
]
