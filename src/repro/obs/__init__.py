"""Observability: tracing spans, metrics, wide events, slow-query log,
SLO tracking, Prometheus exposition, and a sampling profiler.

The subsystem every performance claim in this repo reports through — see
``docs/observability.md`` for the API guide and endpoint reference.
"""

from repro.obs.events import (
    EVENTS_ENV_VAR,
    EventState,
    WideEventLog,
    add_stage,
    annotate_event,
    current_event,
    event_scope,
    event_stage,
    get_event_log,
    incr_event,
    record_sql,
    set_event_log,
)
from repro.obs.exposition import (
    OPENMETRICS_CONTENT_TYPE,
    TEXT_CONTENT_TYPE,
    ExpositionError,
    render_openmetrics,
    render_text,
    validate_openmetrics,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.middleware import ObservabilityMiddleware, route_template
from repro.obs.profiler import (
    PROFILE_HZ_ENV_VAR,
    SamplingProfiler,
    profile_for,
)
from repro.obs.slo import SloTracker, get_slo_tracker, set_slo_tracker
from repro.obs.slowlog import (
    SLOW_MS_ENV_VAR,
    SlowQueryLog,
    get_slow_log,
    set_slow_log,
    threshold_from_env,
)
from repro.obs.trace import Span, Tracer, get_tracer, set_tracer, traced

__all__ = [
    "DEFAULT_BUCKETS",
    "EVENTS_ENV_VAR",
    "OPENMETRICS_CONTENT_TYPE",
    "PROFILE_HZ_ENV_VAR",
    "SLOW_MS_ENV_VAR",
    "TEXT_CONTENT_TYPE",
    "Counter",
    "EventState",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityMiddleware",
    "SamplingProfiler",
    "SloTracker",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "WideEventLog",
    "add_stage",
    "annotate_event",
    "current_event",
    "event_scope",
    "event_stage",
    "get_event_log",
    "get_registry",
    "get_slo_tracker",
    "get_slow_log",
    "get_tracer",
    "incr_event",
    "profile_for",
    "record_sql",
    "render_openmetrics",
    "render_text",
    "route_template",
    "set_event_log",
    "set_slo_tracker",
    "set_slow_log",
    "set_tracer",
    "threshold_from_env",
    "traced",
    "validate_openmetrics",
]
