"""SLO tracking: rolling multi-window objectives and burn rates.

Operators do not alert on raw error counts; they alert on **error-budget
burn**.  The :class:`SloTracker` watches the live request stream and,
over rolling windows (5 minutes and 1 hour by default), computes

* **availability** — the fraction of requests that did not fail with a
  server error (5xx; client errors are the client's budget, not ours),
  against a target like 99.9%;
* **latency attainment** — the fraction of requests faster than a
  threshold (default 500 ms), against a target like 99%.

For each objective the tracker reports the **burn rate**: the observed
miss rate divided by the error budget ``1 - target``.  Burn rate 1.0
means the budget is being spent exactly as fast as it accrues; 14.4 on
the 1h window is the classic page-now threshold.  Multi-window burn
rates are exactly what makes chaos runs legible — inject 5% busy faults
and watch the 5m burn spike while the 1h window absorbs it.

The implementation is a per-second ring of ``(count, errors, slow)``
triples sized to the largest window: ``record`` is O(1) per request,
``snapshot`` walks at most 3600 slots and only runs when ``GET /slo``
or ``GET /metrics`` asks.  The clock is injectable, so the window math
is tested on a fake clock with zero sleeping.

Snapshots also publish ``slo.burn_rate{window=...,objective=...}``
gauges (plus availability/attainment gauges) into the metrics registry,
so Prometheus alerting rules can consume the same numbers the JSON
endpoint shows.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable

from repro.obs.metrics import MetricsRegistry, get_registry

#: Default rolling windows (label -> seconds), smallest first.
DEFAULT_WINDOWS: dict[str, int] = {"5m": 300, "1h": 3600}

#: Environment overrides for the objectives.
AVAILABILITY_ENV_VAR = "REPRO_SLO_AVAILABILITY"
LATENCY_MS_ENV_VAR = "REPRO_SLO_LATENCY_MS"
LATENCY_TARGET_ENV_VAR = "REPRO_SLO_LATENCY_TARGET"


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


class SloTracker:
    """Rolling-window availability/latency objectives over the request
    stream, with burn rates."""

    def __init__(
        self,
        availability_target: float = 0.999,
        latency_threshold_ms: float = 500.0,
        latency_target: float = 0.99,
        windows: dict[str, int] | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if not 0.0 < latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        if latency_threshold_ms <= 0:
            raise ValueError("latency_threshold_ms must be positive")
        self.availability_target = float(availability_target)
        self.latency_threshold_ms = float(latency_threshold_ms)
        self.latency_target = float(latency_target)
        self.windows = dict(windows) if windows else dict(DEFAULT_WINDOWS)
        if not self.windows or any(s < 1 for s in self.windows.values()):
            raise ValueError("windows must map labels to positive seconds")
        self.clock = clock
        self._registry = registry
        self._size = max(self.windows.values())
        self._stamps = [-1] * self._size
        self._counts = [0] * self._size
        self._errors = [0] * self._size
        self._slow = [0] * self._size
        self._lock = threading.Lock()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- recording ---------------------------------------------------------

    def record(self, ok: bool, duration_s: float) -> None:
        """Account one finished request: O(1), called per request."""
        second = int(self.clock())
        index = second % self._size
        slow = duration_s * 1000.0 > self.latency_threshold_ms
        with self._lock:
            if self._stamps[index] != second:
                # The slot last held a second that rolled out of every
                # window a full ring ago; recycle it.
                self._stamps[index] = second
                self._counts[index] = 0
                self._errors[index] = 0
                self._slow[index] = 0
            self._counts[index] += 1
            if not ok:
                self._errors[index] += 1
            if slow:
                self._slow[index] += 1

    # -- reading -----------------------------------------------------------

    def _window_totals(self, now: int, span: int) -> tuple[int, int, int]:
        requests = errors = slow = 0
        for second in range(now - span + 1, now + 1):
            index = second % self._size
            if self._stamps[index] == second:
                requests += self._counts[index]
                errors += self._errors[index]
                slow += self._slow[index]
        return requests, errors, slow

    def snapshot(
        self,
        publish: bool = True,
        registry: MetricsRegistry | None = None,
    ) -> dict:
        """Objectives, per-window attainment and burn rates.

        ``publish=True`` (default) also sets the ``slo.*`` gauges in the
        metrics registry (``registry`` overrides the tracker's own — the
        web layer points it at the registry being scraped) so the same
        numbers are scrapeable.
        """
        now = int(self.clock())
        availability_budget = 1.0 - self.availability_target
        latency_budget = 1.0 - self.latency_target
        windows: dict[str, dict] = {}
        with self._lock:
            totals = {
                label: self._window_totals(now, span)
                for label, span in self.windows.items()
            }
        for label, span in sorted(self.windows.items(), key=lambda kv: kv[1]):
            requests, errors, slow = totals[label]
            if requests:
                availability = 1.0 - errors / requests
                attainment = 1.0 - slow / requests
                availability_burn = (errors / requests) / availability_budget
                latency_burn = (slow / requests) / latency_budget
            else:
                availability = attainment = 1.0
                availability_burn = latency_burn = 0.0
            windows[label] = {
                "seconds": span,
                "requests": requests,
                "errors": errors,
                "slow": slow,
                "availability": round(availability, 6),
                "availability_burn_rate": round(availability_burn, 4),
                "latency_attainment": round(attainment, 6),
                "latency_burn_rate": round(latency_burn, 4),
                "availability_ok": availability >= self.availability_target,
                "latency_ok": attainment >= self.latency_target,
            }
        payload = {
            "objectives": {
                "availability_target": self.availability_target,
                "latency_threshold_ms": self.latency_threshold_ms,
                "latency_target": self.latency_target,
            },
            "windows": windows,
        }
        if publish:
            self._publish(
                windows, registry if registry is not None else self.registry
            )
        return payload

    def _publish(
        self, windows: dict[str, dict], registry: MetricsRegistry
    ) -> None:
        for label, data in windows.items():
            registry.gauge(
                "slo.burn_rate", window=label, objective="availability"
            ).set(data["availability_burn_rate"])
            registry.gauge(
                "slo.burn_rate", window=label, objective="latency"
            ).set(data["latency_burn_rate"])
            registry.gauge("slo.availability", window=label).set(
                data["availability"]
            )
            registry.gauge("slo.latency_attainment", window=label).set(
                data["latency_attainment"]
            )

    def reset(self) -> None:
        """Forget all recorded traffic (tests)."""
        with self._lock:
            for index in range(self._size):
                self._stamps[index] = -1
                self._counts[index] = 0
                self._errors[index] = 0
                self._slow[index] = 0


def tracker_from_env(
    registry: MetricsRegistry | None = None,
) -> SloTracker:
    """A tracker with objectives from ``REPRO_SLO_*`` (or the defaults)."""
    return SloTracker(
        availability_target=min(
            0.999999, max(1e-6, _env_float(AVAILABILITY_ENV_VAR, 0.999))
        ),
        latency_threshold_ms=max(1.0, _env_float(LATENCY_MS_ENV_VAR, 500.0)),
        latency_target=min(
            0.999999, max(1e-6, _env_float(LATENCY_TARGET_ENV_VAR, 0.99))
        ),
        registry=registry,
    )


# -- the process-default tracker -----------------------------------------------

_TRACKER: SloTracker | None = None
_TRACKER_LOCK = threading.Lock()


def get_slo_tracker() -> SloTracker:
    """The process-default SLO tracker (objectives from ``REPRO_SLO_*``)."""
    global _TRACKER
    if _TRACKER is None:
        with _TRACKER_LOCK:
            if _TRACKER is None:
                _TRACKER = tracker_from_env()
    return _TRACKER


def set_slo_tracker(tracker: SloTracker | None) -> SloTracker | None:
    """Swap the process-default tracker; returns the previous one."""
    global _TRACKER
    with _TRACKER_LOCK:
        previous = _TRACKER
        _TRACKER = tracker
    return previous
