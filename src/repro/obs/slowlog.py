"""The slow-query log: full diagnostic capture for outlier requests.

Aggregate latency histograms show *that* p99 moved; the slow-query log
shows *why*: any request whose wall time exceeds a threshold
(``REPRO_SLOW_MS``, or ``--slow-ms`` on the servers) is captured with

* its trace id (= the ``X-Request-ID`` of the response, = the
  ``trace_id`` of its wide event and of the ``/metrics`` exemplars),
* the ``/query/explain``-style plan (computed on capture, so only slow
  requests pay for it),
* the observed per-stage timings collected by the wide-event scope,
* every SQL statement the request executed — statement text and
  bound-parameter *count* only; bind values are redacted by
  construction (they are never recorded in the first place).

Entries live in a bounded ring buffer (:class:`SlowQueryLog`): the
newest ``capacity`` entries are retained, older ones are evicted, and a
monotonic total keeps counting.  Inspect via ``GET /debug/slow`` or
``repro slow-log``.
"""

from __future__ import annotations

import collections
import os
import re
import threading
import time

from repro.obs.events import EventState
from repro.obs.metrics import MetricsRegistry, get_registry

#: Environment variable holding the slow threshold in milliseconds.
SLOW_MS_ENV_VAR = "REPRO_SLOW_MS"

#: Default ring-buffer capacity (retained entries).
DEFAULT_CAPACITY = 64

_WHITESPACE = re.compile(r"\s+")


def redact_statement(sql: str, bound_params: int) -> dict:
    """One captured statement, whitespace-collapsed, binds redacted.

    The storage layer only ever hands over the statement text and the
    *number* of bound parameters — the values themselves (accessions,
    uploaded identifiers) stay out of the log.
    """
    return {
        "sql": _WHITESPACE.sub(" ", sql).strip(),
        "bound_params": int(bound_params),
    }


class SlowQueryLog:
    """Bounded ring buffer of slow-request captures.

    ``threshold_ms=None`` disables capture (the default); the servers
    enable it from ``REPRO_SLOW_MS`` / ``--slow-ms``.
    """

    def __init__(
        self,
        threshold_ms: float | None = None,
        capacity: int = DEFAULT_CAPACITY,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("slow-log capacity must be >= 1")
        self.threshold_ms = threshold_ms
        self.capacity = int(capacity)
        self._entries: collections.deque = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._registry = registry
        self.captured_total = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def should_capture(self, duration_s: float) -> bool:
        """Does a request of this duration cross the threshold?"""
        return (
            self.threshold_ms is not None
            and duration_s * 1000.0 >= self.threshold_ms
        )

    def capture_from_event(
        self, state: EventState, duration_s: float
    ) -> dict:
        """Build and record a capture from a finished wide-event scope.

        The plan thunk (installed by the ``/query`` handler) runs *here*
        — on the slow path only — so fast requests never pay for
        planning twice.
        """
        plan = None
        if state.slow_capture is not None:
            try:
                plan = state.slow_capture()
            except Exception as exc:  # capture must never fail the request
                plan = {"error": f"{type(exc).__name__}: {exc}"}
        entry = {
            "captured_at": round(time.time(), 6),
            "trace_id": state.fields.get("trace_id"),
            "route": state.fields.get("route"),
            "method": state.fields.get("method"),
            "status": state.fields.get("status"),
            "duration_ms": round(duration_s * 1000, 3),
            "threshold_ms": self.threshold_ms,
            "stages_ms": {
                name: round(seconds * 1000, 3)
                for name, seconds in state.stages.items()
            },
            "sql": [redact_statement(sql, n) for sql, n in state.sql],
            "sql_count": int(state.counts.get("sql_count", 0)),
            "plan": plan,
        }
        if "spec_digest" in state.fields:
            entry["spec_digest"] = state.fields["spec_digest"]
        self.record(entry)
        return entry

    def record(self, entry: dict) -> None:
        """Append a capture, evicting the oldest beyond capacity."""
        with self._lock:
            self._entries.append(entry)
            self.captured_total += 1
        self.registry.counter("obs.slowlog.captured").inc()

    def entries(self, limit: int | None = None) -> list[dict]:
        """Retained captures, newest first."""
        with self._lock:
            items = list(self._entries)
        items.reverse()
        return items if limit is None else items[: max(0, int(limit))]

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
        return dropped

    def stats(self) -> dict:
        with self._lock:
            retained = len(self._entries)
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "captured_total": self.captured_total,
            "retained": retained,
        }


# -- the process-default log ---------------------------------------------------

_SLOW_LOG: SlowQueryLog | None = None
_SLOW_LOG_LOCK = threading.Lock()


def threshold_from_env() -> float | None:
    """The ``REPRO_SLOW_MS`` threshold, or None when unset/invalid."""
    raw = os.environ.get(SLOW_MS_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def get_slow_log() -> SlowQueryLog:
    """The process-default slow-query log (always present; capture is
    enabled only when a threshold is configured)."""
    global _SLOW_LOG
    if _SLOW_LOG is None:
        with _SLOW_LOG_LOCK:
            if _SLOW_LOG is None:
                _SLOW_LOG = SlowQueryLog(threshold_ms=threshold_from_env())
    return _SLOW_LOG


def set_slow_log(log: SlowQueryLog | None) -> SlowQueryLog | None:
    """Swap the process-default slow log; returns the previous one."""
    global _SLOW_LOG
    with _SLOW_LOG_LOCK:
        previous = _SLOW_LOG
        _SLOW_LOG = log
    return previous
