"""Hierarchical tracing spans (the observability layer's "where did the
time go" half).

A :class:`Span` measures one named unit of work with monotonic timing,
arbitrary tags and child spans; a :class:`Tracer` maintains the active
span stack (per thread / async context, via ``contextvars``) and collects
finished root spans for rendering or JSONL export.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  The process-wide default tracer
   starts disabled; instrumented hot paths pay one attribute check and a
   no-op context manager per call, nothing else.  Benchmarks therefore
   measure the uninstrumented cost (see ``bench_fig5_generateview``).
2. **Hierarchy for free.**  ``with tracer.span("pipeline.parse")`` nests
   under whatever span is currently active in this context, so the
   pipeline's parse → import → dedup stages appear as a tree under one
   ``integrate_file`` root without any plumbing.
3. **Metrics feedback.**  When tracing is enabled every finished span also
   observes its duration into a latency histogram ``span.<name>`` of the
   default :class:`~repro.obs.metrics.MetricsRegistry`, which is how
   ``POST /query/explain`` reports observed stage timings.

Usage::

    from repro.obs import get_tracer, traced

    @traced("operator.compose")
    def compose(...): ...

    tracer = get_tracer()
    tracer.enable()
    with tracer.span("pipeline.integrate_file", source="GO"):
        ...
    print(tracer.render_tree())
    tracer.export_jsonl("trace.jsonl")
"""

from __future__ import annotations

import contextvars
import functools
import json
import threading
import time
import uuid
from collections.abc import Callable, Iterator
from pathlib import Path


class Span:
    """One timed unit of work in the span tree."""

    __slots__ = (
        "name",
        "tags",
        "span_id",
        "started_at",
        "duration",
        "status",
        "error",
        "children",
        "_t0",
    )

    def __init__(self, name: str, tags: dict | None = None) -> None:
        self.name = name
        self.tags: dict = dict(tags) if tags else {}
        self.span_id = uuid.uuid4().hex[:16]
        #: Wall-clock start (epoch seconds) — for export only; durations
        #: come from the monotonic clock.
        self.started_at = time.time()
        self.duration = 0.0
        self.status = "ok"
        self.error: str | None = None
        self.children: list[Span] = []
        self._t0 = time.perf_counter()

    def tag(self, **tags: object) -> "Span":
        """Attach tags to a live span (e.g. result sizes known at the end)."""
        self.tags.update(tags)
        return self

    def finish(self, exc: BaseException | None = None) -> None:
        """Stop the clock; record error state when an exception escaped."""
        self.duration = time.perf_counter() - self._t0
        if exc is not None:
            self.status = "error"
            self.error = f"{type(exc).__name__}: {exc}"

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pairs, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict:
        """Nested dict form (used by the JSON API)."""
        payload = {
            "name": self.name,
            "duration_ms": round(self.duration * 1000, 3),
            "status": self.status,
        }
        if self.tags:
            payload["tags"] = dict(self.tags)
        if self.error:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1000:.2f}ms)"


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def tag(self, **tags: object) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Context manager counterpart of :class:`_NullSpan` (a singleton)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span under the tracer's active span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, tags: dict | None) -> None:
        self._tracer = tracer
        self._span = Span(name, tags)
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span:
        self._token = self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, traceback) -> None:
        self._span.finish(exc)
        self._tracer._pop(self._span, self._token)
        return None


class Tracer:
    """Collects span trees; safe to share across threads.

    The active-span stack lives in a ``contextvars.ContextVar`` so
    concurrent threads (and async tasks) build independent trees; only the
    finished-roots list is shared, guarded by a lock.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_finished: int = 1000,
        registry=None,
    ) -> None:
        self.enabled = enabled
        #: Cap on retained root spans — a long-lived server must not leak.
        self.max_finished = max_finished
        #: The :class:`~repro.obs.metrics.MetricsRegistry` span durations
        #: are observed into; ``None`` means the process default.
        self.registry = registry
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        self._active: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            "repro_obs_active_span", default=None
        )

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> "Tracer":
        """Turn tracing on (instrumented code starts producing spans)."""
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        """Turn tracing off; already-collected spans are kept."""
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop all finished spans."""
        with self._lock:
            self._finished.clear()

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **tags: object):
        """Open a span as a context manager; no-op while disabled."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, tags or None)

    def current_span(self) -> Span | None:
        """The innermost live span of this context, if any."""
        return self._active.get()

    # -- internals ---------------------------------------------------------

    def _push(self, span: Span) -> contextvars.Token:
        parent = self._active.get()
        if parent is not None:
            parent.children.append(span)
        return self._active.set(span)

    def _pop(self, span: Span, token: contextvars.Token | None) -> None:
        if token is not None:
            self._active.reset(token)
        if self._active.get() is None:
            with self._lock:
                self._finished.append(span)
                if len(self._finished) > self.max_finished:
                    del self._finished[: -self.max_finished]
        self._observe_duration(span)

    def _observe_duration(self, span: Span) -> None:
        """Feed the span's latency into the tracer's metrics registry."""
        registry = self.registry
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        registry.histogram(f"span.{span.name}").observe(span.duration)

    # -- results -----------------------------------------------------------

    @property
    def finished(self) -> list[Span]:
        """Snapshot of the finished root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def last_root(self) -> Span | None:
        """The most recently finished root span, if any."""
        with self._lock:
            return self._finished[-1] if self._finished else None

    def render_tree(self, roots: list[Span] | None = None) -> str:
        """Human-readable span tree with per-span durations and tags."""
        roots = self.finished if roots is None else roots
        if not roots:
            return "(no spans recorded)"
        lines = []
        for root in roots:
            for depth, span in root.walk():
                tags = (
                    "  " + " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
                    if span.tags
                    else ""
                )
                marker = "" if span.status == "ok" else f"  !{span.error}"
                lines.append(
                    f"{'  ' * depth}{span.name:<{max(1, 44 - 2 * depth)}}"
                    f"{span.duration * 1000:>10.2f} ms{tags}{marker}"
                )
        return "\n".join(lines)

    def export_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per span (flattened tree); returns count."""
        path = Path(path)
        written = 0
        with path.open("w", encoding="utf-8") as handle:
            for root in self.finished:
                trace_id = root.span_id
                parents: dict[str, str | None] = {root.span_id: None}
                for __, span in root.walk():
                    for child in span.children:
                        parents[child.span_id] = span.span_id
                    record = {
                        "trace_id": trace_id,
                        "span_id": span.span_id,
                        "parent_id": parents.get(span.span_id),
                        "name": span.name,
                        "started_at": span.started_at,
                        "duration_s": span.duration,
                        "status": span.status,
                        "tags": span.tags,
                    }
                    if span.error:
                        record["error"] = span.error
                    handle.write(json.dumps(record) + "\n")
                    written += 1
        return written


#: The process-wide default tracer; disabled until someone opts in.
_DEFAULT_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer used by all instrumentation."""
    return _DEFAULT_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide default tracer; returns the previous one.

    Instrumented code resolves the default tracer at call time, so tests
    can install an isolated tracer (usually with its own registry) and
    restore the previous one afterwards.
    """
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous


def traced(name: str | None = None, tracer: Tracer | None = None, **tags: object):
    """Decorator instrumenting a function with a span.

    With the default tracer disabled the wrapper costs one attribute check
    per call.  ``name`` defaults to ``<module>.<qualname>`` of the wrapped
    function; static ``tags`` are attached to every span.
    """

    def decorate(func: Callable) -> Callable:
        span_name = name or f"{func.__module__.rsplit('.', 1)[-1]}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            active = tracer if tracer is not None else _DEFAULT_TRACER
            if not active.enabled:
                return func(*args, **kwargs)
            with active.span(span_name, **tags):
                return func(*args, **kwargs)

        wrapper.__wrapped__ = func
        return wrapper

    return decorate
