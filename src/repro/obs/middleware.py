"""WSGI observability middleware: request IDs, latency, status counters.

Wraps any WSGI app (see :func:`repro.web.app.create_app`) and, for every
request:

* assigns a request ID — honouring an incoming ``X-Request-ID`` header so
  IDs propagate across services — exposed to handlers via
  ``environ["repro.request_id"]`` and echoed in the response headers;
* records ``http_requests_total{method,route,status}`` counters and a
  ``http_request_seconds{route}`` latency histogram, labelling by *route
  template* (``/sources/{name}``, not ``/sources/GO``) to keep metric
  cardinality bounded;
* tracks ``http_requests_in_flight`` as a gauge;
* opens an ``http.request`` span when the tracer is enabled, so a traced
  server shows handler work nested under the request.

Errors raised by the wrapped app are counted under status 500 and
re-raised for the server to handle.
"""

from __future__ import annotations

import time
import uuid
from collections.abc import Callable, Iterable

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer, get_tracer

#: Histogram buckets for HTTP latency (seconds).
HTTP_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


def route_template(method: str, path: str) -> str:
    """Collapse a concrete path to its route template.

    Bounded-cardinality labels: ``/sources/GO/objects`` becomes
    ``/sources/{name}/objects``; unknown paths collapse to ``/{unknown}``
    so misbehaving clients cannot explode the metric space.
    """
    segments = [segment for segment in path.split("/") if segment]
    if not segments:
        return "/"
    head = segments[0]
    if head == "sources":
        if len(segments) == 1:
            return "/sources"
        if len(segments) == 2:
            return "/sources/{name}"
        if len(segments) == 3 and segments[2] == "objects":
            return "/sources/{name}/objects"
    elif head == "objects" and len(segments) == 3:
        return "/objects/{source}/{accession}"
    elif head in ("map", "paths", "stats", "metrics", "health") and len(segments) == 1:
        return f"/{head}"
    elif head == "query":
        if len(segments) == 1:
            return "/query"
        if len(segments) == 2 and segments[1] == "explain":
            return "/query/explain"
    return "/{unknown}"


class ObservabilityMiddleware:
    """WSGI wrapper adding request IDs, metrics and an optional span."""

    def __init__(
        self,
        app: Callable,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.app = app
        self._registry = registry
        self._tracer = tracer

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        registry = self.registry
        method = environ.get("REQUEST_METHOD", "GET").upper()
        route = route_template(method, environ.get("PATH_INFO", "/"))
        request_id = environ.get("HTTP_X_REQUEST_ID") or uuid.uuid4().hex[:16]
        environ["repro.request_id"] = request_id

        status_code = {"value": "500"}

        def observed_start_response(status: str, headers: list, exc_info=None):
            status_code["value"] = status.split(" ", 1)[0]
            headers = list(headers)
            headers.append(("X-Request-ID", request_id))
            return start_response(status, headers, *(
                (exc_info,) if exc_info is not None else ()
            ))

        in_flight = registry.gauge("http_requests_in_flight")
        in_flight.inc()
        started = time.perf_counter()
        tracer = self.tracer
        span_context = (
            tracer.span("http.request", method=method, route=route, request_id=request_id)
            if tracer.enabled
            else None
        )
        try:
            if span_context is not None:
                with span_context as span:
                    response = self.app(environ, observed_start_response)
                    span.tag(status=status_code["value"])
            else:
                response = self.app(environ, observed_start_response)
            return response
        finally:
            elapsed = time.perf_counter() - started
            in_flight.dec()
            registry.counter(
                "http_requests_total",
                method=method,
                route=route,
                status=status_code["value"],
            ).inc()
            registry.histogram(
                "http_request_seconds", buckets=HTTP_BUCKETS, route=route
            ).observe(elapsed)
