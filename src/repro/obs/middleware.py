"""WSGI observability middleware: request IDs, latency, status counters,
wide events, SLO accounting and slow-request capture.

Wraps any WSGI app (see :func:`repro.web.app.create_app`) and, for every
request:

* assigns a request ID — honouring an incoming ``X-Request-ID`` header so
  IDs propagate across services — exposed to handlers via
  ``environ["repro.request_id"]`` and echoed in the response headers;
* records ``http_requests_total{method,route,status}`` counters and a
  ``http_request_seconds{route}`` latency histogram, labelling by *route
  template* (``/sources/{name}``, not ``/sources/GO``) to keep metric
  cardinality bounded; each latency observation carries the request id
  as an **exemplar**, so OpenMetrics scrapes can jump from a bucket to
  the matching wide event;
* tracks ``http_requests_in_flight`` as a gauge;
* feeds the request's outcome (5xx? slower than threshold?) to the
  :class:`~repro.obs.slo.SloTracker`;
* when a wide-event sink or slow-query log is active, opens a wide event
  (``event=http_request``) whose trace id *is* the request id — handlers
  and lower layers annotate it through ``repro.obs.events`` — emits it
  after the final status is known, and hands slow requests to the
  slow-query log for plan capture;
* opens an ``http.request`` span when the tracer is enabled, so a traced
  server shows handler work nested under the request.

When neither a sink nor a slow-log threshold is configured, no event
state is allocated at all — the per-request overhead stays within the
budget asserted by ``tests/test_obs.py``.

Errors raised by the wrapped app are counted under status 500 and
re-raised for the server to handle.

Buffered (list) bodies account the request the moment the app returns,
as before.  For streamed bodies — generators whose serialization happens
while the server writes chunks — finalization (latency, counters, SLO,
wide-event emit) is deferred until the body is exhausted or closed, so
measured latency covers the full response, not just the handler.
"""

from __future__ import annotations

import time
import uuid
from collections.abc import Callable, Iterable

from repro.obs.events import (
    _CURRENT,
    EventState,
    WideEventLog,
    get_event_log,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.slo import SloTracker, get_slo_tracker
from repro.obs.slowlog import SlowQueryLog, get_slow_log
from repro.obs.trace import Tracer, get_tracer

#: Histogram buckets for HTTP latency (seconds).
HTTP_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

#: Sentinel distinguishing "use the process default" from "explicitly
#: disabled" for the injectable collaborators.
_UNSET = object()


def route_template(method: str, path: str) -> str:
    """Collapse a concrete path to its route template.

    Bounded-cardinality labels: ``/sources/GO/objects`` becomes
    ``/sources/{name}/objects``; unknown paths collapse to ``/{unknown}``
    so misbehaving clients cannot explode the metric space.
    """
    segments = [segment for segment in path.split("/") if segment]
    if not segments:
        return "/"
    head = segments[0]
    if head == "sources":
        if len(segments) == 1:
            return "/sources"
        if len(segments) == 2:
            return "/sources/{name}"
        if len(segments) == 3 and segments[2] == "objects":
            return "/sources/{name}/objects"
    elif head == "objects" and len(segments) == 3:
        return "/objects/{source}/{accession}"
    elif head in ("map", "paths", "stats", "metrics", "health", "slo") and (
        len(segments) == 1
    ):
        return f"/{head}"
    elif head == "debug" and len(segments) == 2 and segments[1] in (
        "slow",
        "profile",
    ):
        return f"/debug/{segments[1]}"
    elif head == "query":
        if len(segments) == 1:
            return "/query"
        if len(segments) == 2 and segments[1] == "explain":
            return "/query/explain"
    return "/{unknown}"


class _FinalizingBody:
    """A streamed WSGI body that runs a finalizer exactly once when the
    body is exhausted, fails, or is closed by the server.

    WSGI servers iterate the returned body and then call ``close()``;
    wrapping keeps the middleware's accounting correct for generator
    bodies whose serialization happens *after* the wrapped app returned.
    """

    __slots__ = ("_body", "_finalize", "_state")

    def __init__(self, body, finalize: Callable[[], None], state) -> None:
        self._body = body
        self._finalize = finalize
        self._state = state

    def __iter__(self):
        try:
            yield from self._body
        except BaseException as exc:
            if self._state is not None:
                self._state.fields.setdefault(
                    "error", f"{type(exc).__name__}: {exc}"
                )
            self._finalize()
            raise
        self._finalize()

    def close(self) -> None:
        try:
            close = getattr(self._body, "close", None)
            if close is not None:
                close()
        finally:
            self._finalize()


class ObservabilityMiddleware:
    """WSGI wrapper adding request IDs, metrics, wide events, SLO
    accounting, slow capture and an optional span."""

    def __init__(
        self,
        app: Callable,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        event_log: WideEventLog | None | object = _UNSET,
        slow_log: SlowQueryLog | None | object = _UNSET,
        slo: SloTracker | None | object = _UNSET,
    ) -> None:
        self.app = app
        self._registry = registry
        self._tracer = tracer
        self._event_log = event_log
        self._slow_log = slow_log
        self._slo = slo

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def event_log(self) -> WideEventLog | None:
        if self._event_log is _UNSET:
            return get_event_log()
        return self._event_log  # type: ignore[return-value]

    @property
    def slow_log(self) -> SlowQueryLog | None:
        if self._slow_log is _UNSET:
            return get_slow_log()
        return self._slow_log  # type: ignore[return-value]

    @property
    def slo(self) -> SloTracker | None:
        if self._slo is _UNSET:
            return get_slo_tracker()
        return self._slo  # type: ignore[return-value]

    def __call__(self, environ: dict, start_response: Callable) -> Iterable[bytes]:
        registry = self.registry
        method = environ.get("REQUEST_METHOD", "GET").upper()
        route = route_template(method, environ.get("PATH_INFO", "/"))
        request_id = environ.get("HTTP_X_REQUEST_ID") or uuid.uuid4().hex[:16]
        environ["repro.request_id"] = request_id

        status_code = {"value": "500"}

        def observed_start_response(status: str, headers: list, exc_info=None):
            status_code["value"] = status.split(" ", 1)[0]
            headers = list(headers)
            headers.append(("X-Request-ID", request_id))
            return start_response(status, headers, *(
                (exc_info,) if exc_info is not None else ()
            ))

        event_log = self.event_log
        slow_log = self.slow_log
        slo = self.slo
        state = token = None
        if event_log is not None or (slow_log is not None and slow_log.enabled):
            state = EventState(
                "http_request",
                {"trace_id": request_id, "method": method, "route": route},
            )
            token = _CURRENT.set(state)

        in_flight = registry.gauge("http_requests_in_flight")
        in_flight.inc()
        started = time.perf_counter()
        tracer = self.tracer
        span_context = (
            tracer.span("http.request", method=method, route=route, request_id=request_id)
            if tracer.enabled
            else None
        )

        finalized = False

        def finalize() -> None:
            # Idempotent: a streamed body may be closed after exhaustion,
            # and an error path may finalize before the server's close().
            nonlocal finalized
            if finalized:
                return
            finalized = True
            elapsed = time.perf_counter() - started
            in_flight.dec()
            status = status_code["value"]
            registry.counter(
                "http_requests_total",
                method=method,
                route=route,
                status=status,
            ).inc()
            registry.histogram(
                "http_request_seconds", buckets=HTTP_BUCKETS, route=route
            ).observe(elapsed, exemplar=request_id)
            if slo is not None:
                slo.record(status.isdigit() and int(status) < 500, elapsed)
            if state is not None:
                state.fields["status"] = (
                    int(status) if status.isdigit() else status
                )
                if slow_log is not None and slow_log.should_capture(elapsed):
                    state.fields["slow"] = True
                    slow_log.capture_from_event(state, elapsed)
                if event_log is not None:
                    event_log.emit(state.to_record(duration_s=elapsed))

        try:
            if span_context is not None:
                with span_context as span:
                    response = self.app(environ, observed_start_response)
                    span.tag(status=status_code["value"])
            else:
                response = self.app(environ, observed_start_response)
        except BaseException as exc:
            if state is not None:
                state.fields.setdefault(
                    "error", f"{type(exc).__name__}: {exc}"
                )
            if token is not None:
                _CURRENT.reset(token)
            finalize()
            raise
        # The contextvar must be reset here, in the request thread, even
        # when the body streams: annotations all happen during the
        # handler; only serialization is lazy.  (Resetting from whatever
        # context later consumes a generator body would raise.)
        if token is not None:
            _CURRENT.reset(token)
        if isinstance(response, (list, tuple)):
            # Fully buffered body: the request is done now.
            finalize()
            return response
        # Streamed body: a request is not "done" until its last chunk is
        # written (or the client goes away) — latency, SLO and the wide
        # event must cover serialization, so finalization rides on the
        # body's exhaustion/close instead of the handler's return.
        return _FinalizingBody(response, finalize, state)
