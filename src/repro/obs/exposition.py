"""Prometheus/OpenMetrics text exposition for the metrics registry.

``GET /metrics`` historically served a JSON snapshot; a real Prometheus
server speaks the text formats.  This module renders the registry in
both dialects and ships the strict parser CI uses to validate a live
scrape:

* :func:`render_text` — classic Prometheus text format 0.0.4
  (``text/plain; version=0.0.4``): ``# TYPE`` headers, one sample per
  line, cumulative histogram buckets.
* :func:`render_openmetrics` — OpenMetrics 1.0
  (``application/openmetrics-text``): counter samples carry the
  ``_total`` suffix, the output terminates with ``# EOF``, and
  histogram buckets may carry **exemplars** — ``# {trace_id="..."}
  value ts`` — linking a latency bucket to the trace id of one request
  that landed in it.  Grafana's "trace to logs" jump from a heatmap
  cell to the matching wide event is exactly this mechanism.
* :func:`validate_openmetrics` — a strict line-level parser that raises
  :class:`ExpositionError` on malformed output (bad names, missing
  ``# EOF``, non-cumulative buckets, undeclared families, broken
  exemplar syntax).  CI scrapes a live server and runs every byte
  through it.

Registry metric names use dots (``obs.events.dropped``); exposition
sanitises them to the Prometheus charset (``obs_events_dropped``).  The
JSON snapshot keeps the dotted names — the two surfaces are decoupled
on purpose.
"""

from __future__ import annotations

import re

from repro.obs.metrics import Histogram, MetricsRegistry

#: Content type of the classic text format.
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Content type of OpenMetrics 1.0.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


class ExpositionError(ValueError):
    """A violation of the exposition format, with the offending line."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(f"{prefix}{message}")
        self.line_no = line_no


def sanitize_name(name: str) -> str:
    """Map a registry metric name onto the Prometheus name charset."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        name = key if _LABEL_NAME_RE.match(key) else sanitize_name(key)
        parts.append(f'{name}="{_escape_label_value(str(labels[key]))}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float | str) -> str:
    return bound if isinstance(bound, str) else _format_value(float(bound))


def _render(registry: MetricsRegistry, openmetrics: bool) -> str:
    lines: list[str] = []
    declared: set[str] = set()

    # Group labelled series into metric families.  OpenMetrics counter
    # families drop the ``_total`` suffix (samples re-add it); text
    # format 0.0.4 keeps sample name == declared name.
    grouped: dict[tuple[str, str], list[tuple[dict, object]]] = {}
    for kind, name, labels, metric in registry.collect():
        family = sanitize_name(name)
        if openmetrics and kind == "counter" and family.endswith("_total"):
            family = family[: -len("_total")]
        grouped.setdefault((family, kind), []).append((labels, metric))

    for (family, kind), series in sorted(grouped.items()):
        if family in declared:
            # Two registry names sanitised onto the same family with
            # different kinds — skip rather than emit invalid output.
            continue
        declared.add(family)
        lines.append(f"# TYPE {family} {kind}")
        for labels, metric in series:
            if kind == "counter":
                sample = f"{family}_total" if openmetrics else family
                lines.append(
                    f"{sample}{_format_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{family}{_format_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
            else:
                _render_histogram(
                    lines, family, labels, metric, openmetrics
                )
    if openmetrics:
        lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _render_histogram(
    lines: list[str],
    family: str,
    labels: dict[str, str],
    metric: Histogram,
    openmetrics: bool,
) -> None:
    export = metric.export_buckets()
    for bound, cumulative, exemplar in export["buckets"]:
        with_le = dict(labels)
        with_le["le"] = _format_bound(bound)
        line = f"{family}_bucket{_format_labels(with_le)} {cumulative}"
        if openmetrics and exemplar is not None:
            ex_label, ex_value, ex_ts = exemplar
            line += (
                f' # {{trace_id="{_escape_label_value(ex_label)}"}}'
                f" {repr(float(ex_value))} {repr(round(float(ex_ts), 3))}"
            )
        lines.append(line)
    lines.append(
        f"{family}_sum{_format_labels(labels)} "
        f"{repr(float(export['sum']))}"
    )
    lines.append(f"{family}_count{_format_labels(labels)} {export['count']}")


def render_text(registry: MetricsRegistry) -> str:
    """Prometheus text format 0.0.4 (no exemplars, no ``# EOF``)."""
    return _render(registry, openmetrics=False)


def render_openmetrics(registry: MetricsRegistry) -> str:
    """OpenMetrics 1.0 with exemplars, terminated by ``# EOF``."""
    return _render(registry, openmetrics=True)


# -- strict validation (used by CI's scrape check and the tests) ---------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ #]+)"
    r"(?P<exemplar> # \{[^}]*\} [^ ]+( [^ ]+)?)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _parse_labels(text: str, line_no: int) -> dict[str, str]:
    body = text[1:-1]
    if not body:
        return {}
    labels: dict[str, str] = {}
    remainder = body
    while remainder:
        match = _LABEL_PAIR_RE.match(remainder)
        if not match:
            raise ExpositionError(f"malformed label set {text!r}", line_no)
        name, value = match.group(1), match.group(2)
        if name in labels:
            raise ExpositionError(f"duplicate label {name!r}", line_no)
        labels[name] = value
        remainder = remainder[match.end():]
        if remainder.startswith(","):
            remainder = remainder[1:]
        elif remainder:
            raise ExpositionError(f"malformed label set {text!r}", line_no)
    return labels


def _float(text: str, what: str, line_no: int) -> float:
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"non-numeric {what} {text!r}", line_no) from None


def _family_of(sample: str, families: dict[str, str]) -> tuple[str, str] | None:
    """Resolve a sample name to its declared (family, kind)."""
    if sample in families:
        return sample, families[sample]
    for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
        if sample.endswith(suffix):
            family = sample[: -len(suffix)]
            if family in families:
                return family, families[family]
    return None


#: suffixes each metric type may emit samples under (OpenMetrics 1.0).
_ALLOWED_SUFFIXES = {
    "counter": {"_total", "_created"},
    "gauge": {""},
    "histogram": {"_bucket", "_sum", "_count", "_created"},
    "summary": {"", "_sum", "_count", "_created"},
    "unknown": {""},
}


def validate_openmetrics(text: str) -> dict:
    """Strictly validate OpenMetrics text; returns parse statistics.

    Raises :class:`ExpositionError` on the first violation.  Checks:
    mandatory final ``# EOF``; metric/label name charsets; families
    declared (``# TYPE``) before samples and only once; sample suffixes
    legal for the declared type; numeric values; histogram buckets
    carrying ``le``, cumulative-monotone, ending at ``+Inf`` and
    agreeing with ``_count``; well-formed exemplars only on ``_bucket``
    and ``_total`` samples.
    """
    if not text.endswith("\n"):
        raise ExpositionError("exposition must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ExpositionError("missing terminal '# EOF'")
    families: dict[str, str] = {}
    samples = 0
    exemplars = 0
    seen_samples: set[str] = set()
    # (family, frozen non-le labels) -> list of (le, cumulative)
    histo_buckets: dict[tuple, list[tuple[float, float]]] = {}
    histo_counts: dict[tuple, float] = {}

    for line_no, line in enumerate(lines, start=1):
        if line == "# EOF":
            if line_no != len(lines):
                raise ExpositionError("content after '# EOF'", line_no)
            continue
        if not line:
            raise ExpositionError("blank line", line_no)
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#":
                raise ExpositionError(f"malformed comment {line!r}", line_no)
            keyword = parts[1]
            if keyword == "TYPE":
                if len(parts) != 4:
                    raise ExpositionError("malformed TYPE line", line_no)
                family, kind = parts[2], parts[3]
                if not _NAME_RE.match(family):
                    raise ExpositionError(
                        f"invalid metric name {family!r}", line_no
                    )
                if kind not in _ALLOWED_SUFFIXES:
                    raise ExpositionError(
                        f"unknown metric type {kind!r}", line_no
                    )
                if family in families:
                    raise ExpositionError(
                        f"family {family!r} declared twice", line_no
                    )
                families[family] = kind
            elif keyword in ("HELP", "UNIT"):
                continue
            else:
                raise ExpositionError(
                    f"unknown comment keyword {keyword!r}", line_no
                )
            continue

        match = _SAMPLE_RE.match(line)
        if not match:
            raise ExpositionError(f"malformed sample {line!r}", line_no)
        sample_name = match.group("name")
        resolved = _family_of(sample_name, families)
        if resolved is None:
            raise ExpositionError(
                f"sample {sample_name!r} has no declared family", line_no
            )
        family, kind = resolved
        suffix = sample_name[len(family):]
        if suffix not in _ALLOWED_SUFFIXES[kind]:
            raise ExpositionError(
                f"sample suffix {suffix!r} illegal for {kind}", line_no
            )
        labels = _parse_labels(match.group("labels") or "{}", line_no)
        value = _float(match.group("value"), "sample value", line_no)
        identity = f"{sample_name}|{sorted(labels.items())}"
        if identity in seen_samples:
            raise ExpositionError(f"duplicate sample {line!r}", line_no)
        seen_samples.add(identity)
        samples += 1

        exemplar_text = match.group("exemplar")
        if exemplar_text is not None:
            if suffix not in ("_bucket", "_total"):
                raise ExpositionError(
                    "exemplar on a non-bucket/non-counter sample", line_no
                )
            ex_parts = exemplar_text[len(" # "):].split(" ")
            _parse_labels(ex_parts[0], line_no)
            _float(ex_parts[1], "exemplar value", line_no)
            if len(ex_parts) == 3:
                _float(ex_parts[2], "exemplar timestamp", line_no)
            exemplars += 1

        if suffix == "_bucket":
            if "le" not in labels:
                raise ExpositionError("bucket sample without 'le'", line_no)
            bound = (
                float("inf")
                if labels["le"] == "+Inf"
                else _float(labels["le"], "'le' bound", line_no)
            )
            ident = (
                family,
                tuple(sorted((k, v) for k, v in labels.items() if k != "le")),
            )
            histo_buckets.setdefault(ident, []).append((bound, value))
        elif suffix == "_count" and kind == "histogram":
            ident = (family, tuple(sorted(labels.items())))
            histo_counts[ident] = value

    for ident, buckets in histo_buckets.items():
        bounds = [bound for bound, __ in buckets]
        if bounds != sorted(bounds):
            raise ExpositionError(
                f"buckets of {ident[0]!r} not in ascending 'le' order"
            )
        counts = [count for __, count in buckets]
        if counts != sorted(counts):
            raise ExpositionError(
                f"buckets of {ident[0]!r} not cumulative"
            )
        if bounds[-1] != float("inf"):
            raise ExpositionError(f"{ident[0]!r} missing le=\"+Inf\" bucket")
        total = histo_counts.get(ident)
        if total is not None and total != counts[-1]:
            raise ExpositionError(
                f"{ident[0]!r} _count disagrees with +Inf bucket"
            )

    return {
        "families": len(families),
        "samples": samples,
        "exemplars": exemplars,
    }
