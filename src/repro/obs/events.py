"""Wide events: one structured record per unit of served work.

The aggregate metrics of :mod:`repro.obs.metrics` answer "how is the
service doing"; a **wide event** answers "what happened to *this*
request".  Every HTTP request, import and derivation gets exactly one
JSON object carrying everything known about it — trace id, route, query
spec digest, cache hit/stale counts, breaker state, retry count,
deadline budget left, row counts, per-stage timings and how many SQL
statements ran — written as one JSONL line through a bounded,
non-blocking writer (:class:`WideEventLog`).

Three cooperating pieces:

* :class:`WideEventLog` — the sink.  ``emit`` never blocks the serving
  thread: records go onto a bounded queue drained by a daemon writer
  thread; when the queue is full the record is *dropped and counted*
  (``obs.events.dropped``) instead of applying backpressure to the
  request path.
* :func:`event_scope` — a context manager that opens the *current* wide
  event.  The scope lives in a ``contextvars.ContextVar``, so any code
  running under it — the cache, the retry policy, the statement
  boundary — can annotate the event without parameter threading.
* the annotation helpers — :func:`annotate_event`, :func:`incr_event`,
  :func:`add_stage`, :func:`event_stage`, :func:`record_sql`.  Each is a
  no-op costing one ``ContextVar.get`` when no scope is active, which is
  what keeps the disabled path within the ~100 ns overhead budget
  measured by ``tests/test_obs.py``.

The process-default sink is configured from the ``REPRO_EVENTS``
environment variable (a file path) or installed explicitly
(``--events-out`` on ``repro serve`` / ``repro import`` /
``python -m repro.web``).  With no sink installed, scopes still collect
annotations — the slow-query log (:mod:`repro.obs.slowlog`) reads the
same state — but nothing is written.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import queue
import threading
import time
import uuid
from collections.abc import Iterator
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, get_registry

#: Environment variable naming the wide-event JSONL output path.
EVENTS_ENV_VAR = "REPRO_EVENTS"

#: Hard cap on SQL statements retained per event (the slow log shows
#: them; an import touching 100k rows must not build a 100k-entry list).
MAX_SQL_STATEMENTS = 50

#: Hard cap on queued-but-unwritten events before new ones are dropped.
DEFAULT_MAX_QUEUE = 4096

_SHUTDOWN = object()


class WideEventLog:
    """Bounded, non-blocking JSONL event writer.

    ``emit`` enqueues and returns immediately; a daemon thread owns the
    file handle and does all I/O.  A full queue drops the event and
    bumps ``obs.events.dropped`` — observability must never become the
    bottleneck it is meant to diagnose.
    """

    def __init__(
        self,
        path: str | Path,
        max_queue: int = DEFAULT_MAX_QUEUE,
        registry: MetricsRegistry | None = None,
        start: bool = True,
    ) -> None:
        self.path = Path(path)
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._registry = registry
        self._lock = threading.Lock()
        self.emitted = 0
        self.dropped = 0
        self.write_errors = 0
        self._worker: threading.Thread | None = None
        self._closed = False
        if start:
            self.start()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def start(self) -> "WideEventLog":
        """Start the writer thread (idempotent; tests defer it to fill
        the queue deterministically)."""
        with self._lock:
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._drain, name="repro-events", daemon=True
                )
                self._worker.start()
        return self

    def emit(self, record: dict) -> bool:
        """Enqueue one event; returns False when it was dropped."""
        if self._closed:
            return False
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            with self._lock:
                self.dropped += 1
            self.registry.counter("obs.events.dropped").inc()
            return False
        with self._lock:
            self.emitted += 1
        self.registry.counter("obs.events.emitted").inc()
        return True

    def _drain(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            while True:
                record = self._queue.get()
                if record is _SHUTDOWN:
                    handle.flush()
                    return
                try:
                    handle.write(json.dumps(record, default=str) + "\n")
                    handle.flush()
                except Exception:
                    with self._lock:
                        self.write_errors += 1
                    self.registry.counter("obs.events.write_errors").inc()

    def close(self, timeout: float = 5.0) -> None:
        """Flush queued events and stop the writer thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            worker = self._worker
        if worker is None:
            return
        try:
            self._queue.put(_SHUTDOWN, timeout=timeout)
        except queue.Full:
            return
        worker.join(timeout=timeout)

    def stats(self) -> dict:
        """Plain-data counters (tests, ``GET /metrics`` JSON block)."""
        with self._lock:
            return {
                "path": str(self.path),
                "emitted": self.emitted,
                "dropped": self.dropped,
                "write_errors": self.write_errors,
                "queued": self._queue.qsize(),
            }


# -- the current event ---------------------------------------------------------


class EventState:
    """The mutable in-flight wide event the annotation helpers write to."""

    __slots__ = ("kind", "fields", "counts", "stages", "sql", "started_at",
                 "slow_capture", "_t0")

    def __init__(self, kind: str, fields: dict) -> None:
        self.kind = kind
        self.fields = fields
        self.counts: dict[str, float] = {}
        self.stages: dict[str, float] = {}
        #: ``(sql, bound_params)`` pairs — statement text only, bound
        #: values are never retained (redaction by construction).
        self.sql: list[tuple[str, int]] = []
        self.started_at = time.time()
        #: Optional thunk the slow-query log calls to fetch the query
        #: plan — installed by the ``/query`` handler, executed only for
        #: requests that actually exceeded the threshold.
        self.slow_capture = None
        self._t0 = time.perf_counter()

    def annotate(self, **fields: object) -> "EventState":
        self.fields.update(fields)
        return self

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def to_record(self, duration_s: float | None = None) -> dict:
        """The final JSONL-ready event record."""
        record: dict = {
            "event": self.kind,
            "ts": round(self.started_at, 6),
            "duration_ms": round(
                (self.elapsed() if duration_s is None else duration_s) * 1000, 3
            ),
        }
        record.update(self.fields)
        for name, value in self.counts.items():
            record[name] = value
        if self.stages:
            record["stages_ms"] = {
                name: round(seconds * 1000, 3)
                for name, seconds in self.stages.items()
            }
        if self.sql:
            record["sql_statements"] = len(self.sql)
        return record


_CURRENT: contextvars.ContextVar[EventState | None] = contextvars.ContextVar(
    "repro_wide_event", default=None
)


def current_event() -> EventState | None:
    """The in-flight wide event of this context, if a scope is open."""
    return _CURRENT.get()


@contextlib.contextmanager
def event_scope(
    kind: str,
    trace_id: str | None = None,
    emit: bool = True,
    log: "WideEventLog | None" = None,
    **fields: object,
) -> Iterator[EventState]:
    """Open a wide event for the duration of the block.

    On exit the event is emitted to ``log`` (the process default when
    omitted) unless ``emit=False`` — the WSGI middleware manages emission
    itself so it can stamp the final HTTP status first.  A missing sink
    is fine: annotations still accumulate for the slow-query log.
    """
    state = EventState(kind, dict(fields))
    state.fields["trace_id"] = trace_id or uuid.uuid4().hex[:16]
    token = _CURRENT.set(state)
    try:
        yield state
    except BaseException as exc:
        state.fields.setdefault("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _CURRENT.reset(token)
        if emit:
            sink = log if log is not None else get_event_log()
            if sink is not None:
                sink.emit(state.to_record())


def annotate_event(**fields: object) -> None:
    """Merge fields into the current wide event (no-op outside a scope)."""
    state = _CURRENT.get()
    if state is not None:
        state.fields.update(fields)


def incr_event(name: str, amount: float = 1) -> None:
    """Add to a numeric field of the current wide event (cache hits,
    retries, ...); no-op outside a scope."""
    state = _CURRENT.get()
    if state is not None:
        state.counts[name] = state.counts.get(name, 0) + amount


def add_stage(name: str, seconds: float) -> None:
    """Accumulate per-stage time into the current wide event."""
    state = _CURRENT.get()
    if state is not None:
        state.stages[name] = state.stages.get(name, 0.0) + seconds


@contextlib.contextmanager
def event_stage(name: str) -> Iterator[None]:
    """Time a block into the current event's per-stage breakdown."""
    state = _CURRENT.get()
    if state is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        state.stages[name] = (
            state.stages.get(name, 0.0) + time.perf_counter() - t0
        )


def record_sql(sql: str, bound_params: int = 0) -> None:
    """Record one executed statement against the current wide event.

    Called from the storage layer's statement boundary.  Only the SQL
    *text* is kept (bind values never leave the database layer — that is
    the redaction guarantee) plus the bound-parameter count; retention
    is capped at :data:`MAX_SQL_STATEMENTS` while the total keeps
    counting.
    """
    state = _CURRENT.get()
    if state is None:
        return
    state.counts["sql_count"] = state.counts.get("sql_count", 0) + 1
    if len(state.sql) < MAX_SQL_STATEMENTS:
        state.sql.append((sql, bound_params))


# -- the process-default sink --------------------------------------------------

_EVENT_LOG: WideEventLog | None = None
_EVENT_LOG_RESOLVED = False
_EVENT_LOG_LOCK = threading.Lock()


def get_event_log() -> WideEventLog | None:
    """The process-default wide-event sink, or None.

    Resolved lazily on first use: when ``REPRO_EVENTS`` names a path, a
    :class:`WideEventLog` appending to it is installed.
    """
    global _EVENT_LOG, _EVENT_LOG_RESOLVED
    if not _EVENT_LOG_RESOLVED:
        with _EVENT_LOG_LOCK:
            if not _EVENT_LOG_RESOLVED:
                path = os.environ.get(EVENTS_ENV_VAR, "").strip()
                if path:
                    _EVENT_LOG = WideEventLog(path)
                _EVENT_LOG_RESOLVED = True
    return _EVENT_LOG


def set_event_log(log: WideEventLog | None) -> WideEventLog | None:
    """Install (or clear) the process-default sink; returns the previous
    one so tests and CLI entry points can restore it."""
    global _EVENT_LOG, _EVENT_LOG_RESOLVED
    with _EVENT_LOG_LOCK:
        previous = _EVENT_LOG
        _EVENT_LOG = log
        _EVENT_LOG_RESOLVED = True
    return previous
