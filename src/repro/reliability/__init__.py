"""Fault injection, retry, deadlines, circuit breaking and import resume.

See ``docs/reliability.md`` for the architecture; the short version:

* :mod:`repro.reliability.faults` — the injectable fault plane consulted
  at the storage execute boundary (``REPRO_FAULTS``);
* :mod:`repro.reliability.retry` — bounded exponential backoff with
  jitter around transient SQLite failures;
* :mod:`repro.reliability.deadline` — per-request timeout budgets
  threaded via contextvars;
* :mod:`repro.reliability.breaker` — circuit breaker + degraded-mode
  (stale-cache) serving signals;
* :mod:`repro.reliability.checkpoint` — crash-safe, resumable directory
  imports;
* :mod:`repro.reliability.ratelimit` — per-client token buckets backing
  the HTTP edge's 429 + ``Retry-After`` admission control
  (``REPRO_RATE_LIMIT``).
"""

from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    capture_degraded,
    mark_degraded,
    was_degraded,
)
from repro.reliability.checkpoint import ImportJournal, file_fingerprint
from repro.reliability.deadline import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.reliability.faults import (
    CONNECT_OP,
    FAULT_KINDS,
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    injector_from_env,
    parse_fault_rules,
)
from repro.reliability.ratelimit import (
    RATE_LIMIT_ENV_VAR,
    RateDecision,
    RateLimiter,
    limiter_from_env,
)
from repro.reliability.retry import (
    RETRYABLE_MARKERS,
    RetryBudgetExceeded,
    RetryPolicy,
    is_retryable,
    policy_from_env,
)

__all__ = [
    "CLOSED",
    "CONNECT_OP",
    "FAULT_KINDS",
    "FAULTS_ENV_VAR",
    "HALF_OPEN",
    "OPEN",
    "RATE_LIMIT_ENV_VAR",
    "RETRYABLE_MARKERS",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultRule",
    "FaultSpecError",
    "ImportJournal",
    "RateDecision",
    "RateLimiter",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "capture_degraded",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "file_fingerprint",
    "injector_from_env",
    "is_retryable",
    "limiter_from_env",
    "mark_degraded",
    "parse_fault_rules",
    "policy_from_env",
    "was_degraded",
]
