"""Per-request deadlines (timeout budgets) threaded via contextvars.

A production query service cannot let one pathological Compose or
GenerateView hold a worker thread forever.  A :class:`Deadline` carries
"how much time this request has left"; :func:`deadline_scope` installs
one for the current context (request thread / task), and the storage
layer plus the long-running operators call :func:`check_deadline` at
their loop boundaries.  When the budget is gone the work aborts with
:class:`DeadlineExceeded`, which the web layer renders as ``503`` with a
``Retry-After`` header — a clean shed instead of a pile-up.

The check is deliberately cheap (one contextvar read and, only when a
deadline is actually installed, one clock read), so instrumented hot
paths pay nothing in the common no-deadline case.

Clocks are injectable: the deadline tests run entirely on a fake clock.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from collections.abc import Callable, Iterator

from repro.gam.errors import GenMapperError
from repro.obs import get_registry


class DeadlineExceeded(GenMapperError):
    """The request's time budget ran out before the work completed.

    Not retryable: retrying an already-late request only digs the
    latency hole deeper.  Carries ``retry_after`` (seconds) as a hint
    for the web layer's ``Retry-After`` header.
    """

    def __init__(self, budget: float, retry_after: float = 1.0) -> None:
        super().__init__(
            f"deadline exceeded: request budget of {budget:.3f}s is spent"
        )
        self.budget = budget
        self.retry_after = retry_after


class Deadline:
    """An absolute point in time by which the current work must finish."""

    __slots__ = ("budget", "expires_at", "clock")

    def __init__(
        self, budget: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = float(budget)
        self.clock = clock
        self.expires_at = clock() + self.budget

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.expires_at - self.clock())

    def expired(self) -> bool:
        return self.clock() >= self.expires_at


_CURRENT: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline installed for the current context, if any."""
    return _CURRENT.get()


def check_deadline() -> None:
    """Raise :class:`DeadlineExceeded` when the current budget is spent.

    No-op (one contextvar read) when no deadline is installed — safe to
    call from hot paths.
    """
    deadline = _CURRENT.get()
    if deadline is not None and deadline.expired():
        get_registry().counter("reliability.deadline.exceeded").inc()
        raise DeadlineExceeded(deadline.budget)


@contextlib.contextmanager
def deadline_scope(
    budget: float | None, clock: Callable[[], float] = time.monotonic
) -> Iterator[Deadline | None]:
    """Install a deadline for the duration of the block.

    ``budget=None`` is a no-op scope, so callers can thread an optional
    timeout without branching.  Nested scopes keep whichever deadline is
    *tighter* — an outer request budget cannot be extended by an inner
    call installing a laxer one.
    """
    if budget is None:
        yield current_deadline()
        return
    candidate = Deadline(budget, clock=clock)
    outer = _CURRENT.get()
    effective = (
        outer
        if outer is not None and outer.expires_at <= candidate.expires_at
        else candidate
    )
    token = _CURRENT.set(effective)
    try:
        yield effective
    finally:
        _CURRENT.reset(token)
