"""Per-client token-bucket rate limiting for the HTTP edge.

A service meant to carry heavy read traffic cannot let one aggressive
client starve everyone else: the edge admits each request by charging a
token from the calling client's bucket.  Buckets refill continuously at
``rate`` tokens per second up to a ``burst`` ceiling, so short bursts
pass untouched while sustained flooding is shed with ``429`` and a
precise ``Retry-After`` (seconds until the next token accrues).

Two design points worth calling out:

* **Bounded client state** — buckets live in a
  :class:`repro.cache.lru.BoundedLruMap`; a client flood (or spoofed
  addresses) can recycle bucket slots but never grow the process.  An
  evicted-and-recreated bucket starts full, which only ever errs in the
  client's favour.
* **Breaker integration** — when the repository circuit breaker (see
  :mod:`repro.reliability.breaker`) is not closed, the edge charges
  ``degraded_cost`` tokens per request instead of one, shrinking every
  client's effective rate while the storage layer recovers.  Shedding at
  the edge is cheaper than queueing onto an open breaker: the 429 + the
  breaker's own 503s both push clients into backoff instead of a retry
  stampede.

The clock is injectable so tests advance a fake clock instead of
sleeping.  Decisions are mirrored into the metrics registry
(``edge.rate_allowed`` / ``edge.rate_limited`` counters and the
``edge.rate_clients`` gauge) and the web layer annotates them onto the
request's wide event (``docs/observability.md``).
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable

from repro.cache.lru import BoundedLruMap
from repro.obs import MetricsRegistry, get_registry

#: Environment switch: requests per second per client (float; unset = off).
RATE_LIMIT_ENV_VAR = "REPRO_RATE_LIMIT"

#: Environment override for the bucket ceiling (defaults to ~2s of rate).
RATE_BURST_ENV_VAR = "REPRO_RATE_BURST"

#: Default bound on distinct client buckets kept resident.
DEFAULT_MAX_CLIENTS = 4096

#: Default token cost per request while the circuit breaker is not closed.
DEFAULT_DEGRADED_COST = 4.0


class RateDecision:
    """The outcome of one admission check."""

    __slots__ = ("allowed", "retry_after", "tokens")

    def __init__(self, allowed: bool, retry_after: float, tokens: float) -> None:
        self.allowed = allowed
        #: Seconds until the charged cost would be affordable (0 when allowed).
        self.retry_after = retry_after
        #: Tokens left in the bucket after the decision.
        self.tokens = tokens


class _Bucket:
    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class RateLimiter:
    """Thread-safe per-client token buckets.

    Parameters
    ----------
    rate:
        Sustained tokens per second granted to each client (> 0).
    burst:
        Bucket ceiling — the largest charge a fully idle client can make
        at once.  Defaults to two seconds of ``rate`` (at least 1).
    degraded_cost:
        Tokens charged per request while the circuit breaker reports a
        non-closed state (>= 1).
    max_clients:
        Bound on distinct buckets kept resident (LRU-recycled past it).
    clock:
        Monotonic seconds source; injectable for tests.
    registry:
        Metrics registry; the process default unless injected.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        degraded_cost: float = DEFAULT_DEGRADED_COST,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst) if burst is not None else 2.0 * rate)
        self.degraded_cost = max(1.0, float(degraded_cost))
        self.clock = clock
        self._registry = registry
        self._lock = threading.Lock()
        self._buckets = BoundedLruMap(max_clients)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def check(self, client: str, cost: float = 1.0) -> RateDecision:
        """Charge ``cost`` tokens from ``client``'s bucket.

        Returns an allowed decision when the bucket holds enough tokens
        (charging them), otherwise a denied decision carrying the seconds
        until the cost would be affordable — the ``Retry-After`` value.
        A denied check charges nothing: rejected clients lose no ground
        for having asked.
        """
        cost = max(0.0, float(cost))
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = _Bucket(tokens=self.burst, updated=now)
                self._buckets.set(client, bucket)
            else:
                elapsed = max(0.0, now - bucket.updated)
                bucket.tokens = min(self.burst, bucket.tokens + elapsed * self.rate)
                bucket.updated = now
            if bucket.tokens >= cost:
                bucket.tokens -= cost
                decision = RateDecision(True, 0.0, bucket.tokens)
            else:
                retry_after = (cost - bucket.tokens) / self.rate
                decision = RateDecision(False, retry_after, bucket.tokens)
            clients = len(self._buckets)
        registry = self.registry
        if decision.allowed:
            registry.counter("edge.rate_allowed").inc()
        else:
            registry.counter("edge.rate_limited").inc()
        registry.gauge("edge.rate_clients").set(clients)
        return decision

    def stats(self) -> dict:
        """Plain-data configuration + occupancy block (``/metrics``)."""
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "degraded_cost": self.degraded_cost,
                "clients": len(self._buckets),
                "max_clients": self._buckets.max_entries,
                "evicted_clients": self._buckets.evictions,
            }


def limiter_from_env(
    registry: MetricsRegistry | None = None,
) -> RateLimiter | None:
    """The limiter ``REPRO_RATE_LIMIT`` / ``REPRO_RATE_BURST`` configure,
    or None when rate limiting is off (the default)."""
    raw = os.environ.get(RATE_LIMIT_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        rate = float(raw)
    except ValueError:
        return None
    if rate <= 0:
        return None
    burst: float | None = None
    raw_burst = os.environ.get(RATE_BURST_ENV_VAR)
    if raw_burst:
        try:
            burst = float(raw_burst)
        except ValueError:
            burst = None
    return RateLimiter(rate, burst=burst, registry=registry)
