"""The injectable fault plane.

Failure behaviour cannot be tested by waiting for production to fail: the
storage layer needs a hook through which tests (and chaos CI runs) can
*deterministically* make it fail.  A :class:`FaultInjector` is installed
at the :class:`repro.gam.database.GamDatabase` /
:class:`repro.gam.pool.ConnectionPool` execute boundary and consulted
before every statement runs.  A matching rule can

* raise ``sqlite3.OperationalError("database is locked")`` — the
  SQLITE_BUSY storm every concurrent SQLite deployment eventually sees;
* raise ``sqlite3.OperationalError("disk I/O error")`` — a failing disk;
* inject latency — a slow disk or an overloaded machine.

Faults fire *before* the underlying statement executes, so an injected
failure never mutates the database: retrying the statement is always
safe, which is what makes the chaos-equivalence tests in
``tests/test_chaos.py`` meaningful (see ``docs/reliability.md``).

Rules trigger by probability (seeded RNG — a chaos run is reproducible),
by call count (``after``/``times`` — "fail exactly the third INSERT"),
or by SQL pattern (case-insensitive substring).  The plane is configured
either programmatically (tests build :class:`FaultRule` objects directly)
or via the ``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS="busy:0.05"                  # 5% of statements -> BUSY
    REPRO_FAULTS="busy:1@INSERT#2"            # first two INSERTs fail
    REPRO_FAULTS="ioerror:0.01;latency:0.2~0.005"

Grammar per rule (rules separated by ``;`` or ``,``)::

    kind[:probability][@sql-pattern][#times][+after][~seconds]

``kind`` is ``busy``, ``ioerror`` or ``latency``; ``times`` caps how
often the rule fires; ``after`` skips the first N matching calls;
``seconds`` is the injected latency duration.  ``REPRO_FAULTS_SEED``
fixes the RNG seed (default 1).
"""

from __future__ import annotations

import dataclasses
import os
import random
import re
import sqlite3
import threading
import time

from repro.obs import MetricsRegistry, get_registry

#: Environment variable holding the fault specification.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Environment variable fixing the injector's RNG seed.
FAULTS_SEED_ENV_VAR = "REPRO_FAULTS_SEED"

#: Supported fault kinds.
FAULT_KINDS = ("busy", "ioerror", "latency")

#: Pseudo-SQL passed to the injector when a new connection is opened, so
#: rules can target connection establishment (``@CONNECT``).
CONNECT_OP = "CONNECT"

_RULE_RE = re.compile(
    r"^(?P<kind>[a-z]+)"
    r"(?::(?P<probability>[0-9.]+))?"
    r"(?:@(?P<pattern>[^#+~;,]+))?"
    r"(?:#(?P<times>\d+))?"
    r"(?:\+(?P<after>\d+))?"
    r"(?:~(?P<seconds>[0-9.]+))?$"
)


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` specification could not be parsed."""


@dataclasses.dataclass
class FaultRule:
    """One fault-injection rule.

    Parameters
    ----------
    kind:
        ``busy`` (raise SQLITE_BUSY), ``ioerror`` (raise a disk I/O
        error) or ``latency`` (sleep ``seconds``).
    probability:
        Chance a matching call fires the rule (1.0 = always).
    pattern:
        Case-insensitive substring the statement must contain (``None``
        matches every statement, including :data:`CONNECT_OP`).
    times:
        Maximum number of fires (``None`` = unlimited).
    after:
        Number of matching calls to let pass before the rule may fire —
        combined with ``times=1`` and ``probability=1`` this pins the
        fault to exactly one call, which the atomicity property tests
        rely on.
    seconds:
        Injected latency duration for ``latency`` rules.
    """

    kind: str
    probability: float = 1.0
    pattern: str | None = None
    times: int | None = None
    after: int = 0
    seconds: float = 0.001
    #: Matching calls seen so far (mutated under the injector's lock).
    seen: int = 0
    #: Times this rule has fired.
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )

    def matches(self, operation: str) -> bool:
        return self.pattern is None or self.pattern.lower() in operation.lower()

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


class FaultInjector:
    """A set of fault rules consulted at the storage execute boundary.

    Thread-safe; the RNG is seeded, so a multi-threaded chaos run fires
    the same *number* of faults per seed even though thread interleaving
    assigns them to different statements.
    """

    def __init__(
        self,
        rules: list[FaultRule] | None = None,
        seed: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.rules = list(rules or [])
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def fired(self) -> int:
        """Total number of faults this injector has raised or injected."""
        with self._lock:
            return sum(rule.fired for rule in self.rules)

    def add_rule(self, rule: FaultRule) -> "FaultInjector":
        with self._lock:
            self.rules.append(rule)
        return self

    def reset(self) -> None:
        """Zero every rule's counters (tests reusing one injector)."""
        with self._lock:
            for rule in self.rules:
                rule.seen = 0
                rule.fired = 0

    def on_execute(self, operation: str, *, targeted_only: bool = False) -> None:
        """Consult the rules for one statement; may raise or sleep.

        Called by the storage layer *before* the statement executes, so
        an injected fault never leaves partial state behind.
        """
        delay = 0.0
        fault: FaultRule | None = None
        with self._lock:
            for rule in self.rules:
                if targeted_only and rule.pattern is None:
                    continue
                if rule.exhausted() or not rule.matches(operation):
                    continue
                rule.seen += 1
                if rule.seen <= rule.after:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                rule.fired += 1
                self.registry.counter(
                    "reliability.faults.injected", kind=rule.kind
                ).inc()
                if rule.kind == "latency":
                    delay += rule.seconds
                    continue
                fault = rule
                break
        if delay:
            time.sleep(delay)
        if fault is not None:
            if fault.kind == "busy":
                raise sqlite3.OperationalError("database is locked (injected)")
            raise sqlite3.OperationalError("disk I/O error (injected)")

    def on_connect(self) -> None:
        """Consult the rules for a connection attempt (``@CONNECT``).

        Only rules that explicitly target :data:`CONNECT_OP` fire here;
        a blanket ``busy:0.05`` must not make pool growth flaky.
        """
        self.on_execute(CONNECT_OP, targeted_only=True)


def parse_fault_rules(spec: str) -> list[FaultRule]:
    """Parse a ``REPRO_FAULTS`` specification into rules."""
    rules = []
    for token in re.split(r"[;,]", spec):
        token = token.strip()
        if not token:
            continue
        match = _RULE_RE.match(token)
        if match is None:
            raise FaultSpecError(
                f"cannot parse fault rule {token!r}"
                " (expected kind[:prob][@pattern][#times][+after][~seconds])"
            )
        groups = match.groupdict()
        rules.append(
            FaultRule(
                kind=groups["kind"],
                probability=(
                    float(groups["probability"])
                    if groups["probability"] is not None
                    else 1.0
                ),
                pattern=groups["pattern"],
                times=int(groups["times"]) if groups["times"] is not None else None,
                after=int(groups["after"]) if groups["after"] is not None else 0,
                seconds=(
                    float(groups["seconds"])
                    if groups["seconds"] is not None
                    else 0.001
                ),
            )
        )
    return rules


def injector_from_env() -> FaultInjector | None:
    """The process fault injector configured by ``REPRO_FAULTS``, or None.

    Called once per :class:`~repro.gam.database.GamDatabase`, so every
    database opened under a chaos run carries its own seeded injector.
    """
    spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not spec:
        return None
    seed = int(os.environ.get(FAULTS_SEED_ENV_VAR, "1") or "1")
    return FaultInjector(parse_fault_rules(spec), seed=seed)
