"""Circuit breaker + degraded-mode signalling.

When the storage layer fails *persistently* — retries keep giving up —
hammering it with more load only makes recovery slower.  The
:class:`CircuitBreaker` implements the classic three-state machine:

* **closed** — normal operation; consecutive transient failures are
  counted, and reaching ``failure_threshold`` opens the circuit;
* **open** — calls are short-circuited without touching the database;
  after ``recovery_time`` the breaker lets probes through;
* **half-open** — a bounded number of probe calls run for real; one
  success closes the circuit, one failure re-opens it.

While the circuit is open, :class:`repro.core.genmapper.GenMapper`
serves *stale* mapping-cache entries instead of erroring — annotation
data ages gracefully (yesterday's GO mapping is almost always better
than a 500) — and flags the response ``degraded: true``.  The flag
travels via a contextvar (:func:`capture_degraded` /
:func:`mark_degraded`) so the web layer can annotate the JSON response
without threading a parameter through every operator.

The clock is injectable; the state-machine tests advance a fake clock
instead of sleeping.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections.abc import Callable, Iterator

from repro.gam.errors import GenMapperError
from repro.obs import MetricsRegistry, get_registry

#: Breaker states (gauge values exported as ``reliability.breaker.state``).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitOpenError(GenMapperError):
    """The circuit is open and no stale fallback was available.

    Carries ``retry_after`` — the seconds until the breaker will next
    admit a probe — which the web layer forwards as ``Retry-After``.
    """

    def __init__(self, name: str, retry_after: float) -> None:
        super().__init__(
            f"circuit {name!r} is open; retry in {retry_after:.1f}s"
        )
        self.retry_after = max(0.0, retry_after)


class CircuitBreaker:
    """Thread-safe three-state circuit breaker."""

    def __init__(
        self,
        name: str = "repository",
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.recovery_time = float(recovery_time)
        self.half_open_max = max(1, int(half_open_max))
        self.clock = clock
        self._registry = registry
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def retry_after(self) -> float:
        """Seconds until the next probe will be admitted (0 when closed)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self._opened_at + self.recovery_time - self.clock()
            )

    def _publish_state_locked(self) -> None:
        self.registry.gauge(
            "reliability.breaker.state", breaker=self.name
        ).set(_STATE_GAUGE[self._state])

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == OPEN
            and self.clock() >= self._opened_at + self.recovery_time
        ):
            self._state = HALF_OPEN
            self._probes = 0
            self._publish_state_locked()

    def allow(self) -> bool:
        """May a call proceed right now?

        Half-open admits at most ``half_open_max`` concurrent probes;
        everything else is short-circuited (counted under
        ``reliability.breaker.short_circuits``) until an outcome is
        recorded.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes < self.half_open_max:
                self._probes += 1
                return True
            self.registry.counter(
                "reliability.breaker.short_circuits", breaker=self.name
            ).inc()
            return False

    def record_success(self) -> None:
        """A guarded call completed normally."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._probes = 0
                self.registry.counter(
                    "reliability.breaker.closes", breaker=self.name
                ).inc()
                self._publish_state_locked()

    def record_failure(self) -> None:
        """A guarded call failed with a transient storage error."""
        with self._lock:
            self._consecutive_failures += 1
            tripped = (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            )
            if tripped and self._state != OPEN:
                self._state = OPEN
                self._opened_at = self.clock()
                self._probes = 0
                self.registry.counter(
                    "reliability.breaker.opens", breaker=self.name
                ).inc()
                self._publish_state_locked()
            elif tripped:
                self._opened_at = self.clock()

    def open_error(self) -> CircuitOpenError:
        return CircuitOpenError(self.name, self.retry_after())

    def stats(self) -> dict:
        """Plain-data state block (``GET /health``, tests)."""
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "recovery_time": self.recovery_time,
            }


# -- degraded-mode signalling --------------------------------------------------

_DEGRADED: contextvars.ContextVar[dict | None] = contextvars.ContextVar(
    "repro_degraded", default=None
)


@contextlib.contextmanager
def capture_degraded() -> Iterator[dict]:
    """Collect degraded-serving events for the duration of the block.

    The web layer wraps each request in one capture; operators that fall
    back to stale data call :func:`mark_degraded` and the handler then
    annotates the response with ``degraded: true``.
    """
    state = {"degraded": False, "reasons": []}
    token = _DEGRADED.set(state)
    try:
        yield state
    finally:
        _DEGRADED.reset(token)


def mark_degraded(reason: str) -> None:
    """Record that the current response was served from stale data."""
    get_registry().counter("reliability.degraded_serves").inc()
    state = _DEGRADED.get()
    if state is not None:
        state["degraded"] = True
        state["reasons"].append(reason)


def was_degraded() -> bool:
    """True when the current capture scope saw a degraded serve."""
    state = _DEGRADED.get()
    return bool(state is not None and state["degraded"])
