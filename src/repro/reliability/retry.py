"""Bounded retry with exponential backoff and jitter.

SQLite under concurrent writers fails *transiently*: SQLITE_BUSY when a
lock could not be obtained, occasional I/O hiccups on slow disks.  The
seed storage layer propagated those straight to callers; a production
deployment retries them.  :class:`RetryPolicy` implements the standard
scheme — exponential backoff, capped, with jitter so a thundering herd
of writers desynchronizes — bounded both by attempt count and by wall
clock, and *only* for errors classified retryable (a constraint
violation or a programming error must never be retried).

The policy is deliberately clock- and sleep-injectable: the schedule
tests in ``tests/test_reliability.py`` run the whole backoff ladder with
a fake clock and zero real sleeping.

Outcomes are reported through ``reliability.retry.*`` metrics:
``attempts`` (failed attempts that were retried), ``successes`` (calls
that succeeded after at least one retry), ``giveups`` (budget exhausted)
and ``sleep_seconds`` (total injected backoff).
"""

from __future__ import annotations

import dataclasses
import os
import random
import sqlite3
import time
from collections.abc import Callable

from repro.obs import MetricsRegistry, get_registry
from repro.obs.events import incr_event
from repro.reliability.deadline import current_deadline

#: Lower-cased substrings of ``sqlite3.OperationalError`` messages that
#: mark a transient, safely retryable failure.
RETRYABLE_MARKERS = (
    "database is locked",
    "database table is locked",
    "database is busy",
    "disk i/o error",
    "unable to open database file",
)


def is_retryable(exc: BaseException) -> bool:
    """True when the error is transient and the operation may be retried.

    Only ``sqlite3.OperationalError`` with a known-transient message
    qualifies — integrity violations, schema errors and programming
    errors are deterministic and must surface immediately.
    """
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return any(marker in message for marker in RETRYABLE_MARKERS)


class RetryBudgetExceeded(sqlite3.OperationalError):
    """A retryable operation kept failing until the budget ran out.

    Subclasses ``sqlite3.OperationalError`` so existing handlers treat
    it like the storage failure it wraps; carries the attempt count and
    the final underlying error as ``__cause__``.
    """

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"operation failed after {attempts} attempts: {last_error}"
        )
        self.attempts = attempts


@dataclasses.dataclass
class RetryPolicy:
    """Exponential backoff with jitter, bounded by attempts and time.

    The delay before retry ``n`` (1-based) is
    ``min(base_delay * multiplier**(n-1), max_delay)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1]`` — the jittered delay
    never *exceeds* the deterministic schedule, so the time budget
    properties in ``tests/test_properties.py`` hold by construction.
    """

    max_attempts: int = 5
    base_delay: float = 0.002
    max_delay: float = 0.1
    multiplier: float = 2.0
    jitter: float = 0.5
    #: Wall-clock budget across all attempts; ``None`` = unbounded.
    max_elapsed: float | None = 5.0
    #: Predicate deciding which errors are worth retrying.
    retryable: Callable[[BaseException], bool] = is_retryable
    #: Injectable for tests (fake clock; no real sleeping).
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    rng: random.Random = dataclasses.field(default_factory=random.Random)
    registry: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def backoff(self, attempt: int) -> float:
        """The deterministic (un-jittered) delay before retry ``attempt``."""
        return min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )

    def delay_for(self, attempt: int) -> float:
        """The jittered delay before retry ``attempt`` (never above
        :meth:`backoff`)."""
        ceiling = self.backoff(attempt)
        if self.jitter == 0.0:
            return ceiling
        return ceiling * (1.0 - self.jitter * self.rng.random())

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn``, retrying transient failures within the budget.

        Non-retryable errors propagate immediately.  When the attempt or
        time budget is exhausted, :class:`RetryBudgetExceeded` is raised
        from the last underlying error.  An active request deadline
        (:mod:`repro.reliability.deadline`) also bounds the backoff: the
        policy never sleeps past the deadline.
        """
        registry = self._registry()
        attempt = 1
        started: float | None = None
        while True:
            try:
                result = fn()
            except BaseException as exc:
                if not self.retryable(exc):
                    raise
                if started is None:
                    started = self.clock()
                registry.counter("reliability.retry.attempts").inc()
                incr_event("retries")
                if attempt >= self.max_attempts:
                    registry.counter("reliability.retry.giveups").inc()
                    raise RetryBudgetExceeded(attempt, exc) from exc
                delay = self.delay_for(attempt)
                elapsed = self.clock() - started
                if (
                    self.max_elapsed is not None
                    and elapsed + delay > self.max_elapsed
                ):
                    registry.counter("reliability.retry.giveups").inc()
                    raise RetryBudgetExceeded(attempt, exc) from exc
                deadline = current_deadline()
                if deadline is not None and deadline.remaining() < delay:
                    registry.counter("reliability.retry.giveups").inc()
                    raise RetryBudgetExceeded(attempt, exc) from exc
                registry.counter("reliability.retry.sleep_seconds").inc(delay)
                self.sleep(delay)
                attempt += 1
            else:
                if attempt > 1:
                    registry.counter("reliability.retry.successes").inc()
                return result


def policy_from_env() -> RetryPolicy:
    """The default writer-path policy, tunable via the environment.

    ``REPRO_RETRY_ATTEMPTS`` / ``REPRO_RETRY_BASE_DELAY`` /
    ``REPRO_RETRY_MAX_DELAY`` / ``REPRO_RETRY_MAX_ELAPSED`` override the
    defaults; ``REPRO_RETRY_ATTEMPTS=1`` disables retrying (one attempt,
    no backoff).
    """

    def _float(name: str, default: float) -> float:
        raw = os.environ.get(name)
        try:
            return float(raw) if raw else default
        except ValueError:
            return default

    return RetryPolicy(
        max_attempts=max(1, int(_float("REPRO_RETRY_ATTEMPTS", 5))),
        base_delay=_float("REPRO_RETRY_BASE_DELAY", 0.002),
        max_delay=_float("REPRO_RETRY_MAX_DELAY", 0.1),
        max_elapsed=_float("REPRO_RETRY_MAX_ELAPSED", 5.0),
    )
