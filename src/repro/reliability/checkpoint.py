"""Crash-safe import resume: per-source checkpoints in the GAM database.

``integrate_directory`` imports each manifest source inside one
transaction, so a crash (OOM kill, power loss, fatal disk error) leaves
the database with some sources fully imported and the in-flight one
rolled back.  The :class:`ImportJournal` records a checkpoint in the
database's ``meta`` table after each source commits; a resumed run skips
every checkpointed source whose file content is unchanged and continues
with the rest.

Why this is correct without two-phase anything:

* the checkpoint is written *after* the source's import transaction
  commits, on the same database — it can never claim work that was
  rolled back;
* if the crash lands in the tiny window between the commit and the
  checkpoint write, the resumed run re-imports that one source, and the
  GAM duplicate elimination (source/object/association level — see
  ``docs/performance.md``) makes the re-import a no-op;
* the checkpoint stores a content fingerprint of the input file, so a
  *changed* file is never wrongly skipped.

Checkpoints are keyed by (source name, manifest file name) under
``import_ckpt:`` keys, living in the same ``meta`` table that holds
saved paths — no schema change, and they travel with the database.

Each checkpoint also stores the **per-table row-id watermarks** observed
*before* the source was imported (``max(object_id)``,
``max(obj_rel_id)``, ``max(src_rel_id)``): rows above a watermark are
exactly the import's delta, which the incremental maintenance engines
(:mod:`repro.derived.refresh`) feed into delta chain joins and
delta closures instead of recomputing materialized mappings from
scratch (``docs/performance.md``).  Checkpoint writes themselves run in
a *neutral* write scope — they change no mapping data, so they must not
invalidate warm cache entries.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # circular at runtime: database.py imports this package
    from repro.gam.database import GamDatabase

_KEY_PREFIX = "import_ckpt:"

#: Tables whose max row-id is snapshotted before each source import.
WATERMARK_TABLES = {
    "object": "object_id",
    "object_rel": "obj_rel_id",
    "source_rel": "src_rel_id",
}


def file_fingerprint(path: str | Path) -> str:
    """SHA-1 of the file's content (identity of "the same input")."""
    digest = hashlib.sha1()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ImportJournal:
    """Per-source import checkpoints persisted in one GAM database."""

    def __init__(self, db: "GamDatabase") -> None:
        self.db = db

    @staticmethod
    def _key(source: str, file: str) -> str:
        return f"{_KEY_PREFIX}{source}\x1f{file}"

    def completed(
        self, source: str, file: str, fingerprint: str, release: str | None = None
    ) -> bool:
        """True when this exact (source, file, content) already imported."""
        row = self.db.execute_read(
            "SELECT value FROM meta WHERE key = ?", (self._key(source, file),)
        ).fetchone()
        if row is None:
            return False
        try:
            record = json.loads(row[0])
        except ValueError:
            return False
        return (
            record.get("fingerprint") == fingerprint
            and record.get("release") == release
        )

    def table_watermarks(self) -> dict[str, object]:
        """Current max row-id per delta-relevant table (0 when empty).

        Taken *before* an import, rows with ids above these marks are
        exactly the import's delta — the seed set for
        :mod:`repro.derived.refresh`.  Delegates to the engine: the
        monolithic database returns one scalar per table; the sharded
        one a per-slot dict per table, because each shard allocates ids
        from its own stride and one global max would hide another
        shard's fresh rows (:meth:`repro.gam.database.GamDatabase
        .table_watermarks`).
        """
        return self.db.table_watermarks(WATERMARK_TABLES)

    def record(
        self,
        source: str,
        file: str,
        fingerprint: str,
        release: str | None = None,
        watermarks: dict[str, object] | None = None,
    ) -> None:
        """Checkpoint one source as fully imported.

        ``watermarks`` is the :meth:`table_watermarks` snapshot taken
        before the import started.  Neutral write scope: the checkpoint
        is bookkeeping, not mapping data — warm cache entries survive it.
        """
        record: dict[str, object] = {"fingerprint": fingerprint, "release": release}
        if watermarks is not None:
            record["watermarks"] = dict(watermarks)
        payload = json.dumps(record)
        with self.db.write_scope(), self.db.transaction():
            self.db.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)"
                " ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                (self._key(source, file), payload),
            )

    def watermarks(self, source: str, file: str) -> dict[str, object] | None:
        """The pre-import watermarks of one checkpoint, or None.

        Values are scalars (monolithic) or per-slot dicts keyed by
        stringified slot id (sharded); both shapes round-trip JSON
        unchanged, so a checkpoint survives a ``migrate-shards`` in
        between — a scalar mark stays correct afterwards because every
        freshly allocated shard id sits above the old monolithic range.
        """
        row = self.db.execute_read(
            "SELECT value FROM meta WHERE key = ?", (self._key(source, file),)
        ).fetchone()
        if row is None:
            return None
        try:
            record = json.loads(row[0])
        except ValueError:
            return None
        marks = record.get("watermarks")
        if not isinstance(marks, dict):
            return None
        return {
            str(table): (
                {str(slot): int(mark) for slot, mark in value.items()}
                if isinstance(value, dict)
                else int(value)
            )
            for table, value in marks.items()
        }

    def entries(self) -> dict[str, dict]:
        """All checkpoints, keyed ``source/file`` (inspection, tests)."""
        rows = self.db.execute_read(
            "SELECT key, value FROM meta WHERE key LIKE ?", (_KEY_PREFIX + "%",)
        ).fetchall()
        result = {}
        for row in rows:
            source, __, file = row[0][len(_KEY_PREFIX):].partition("\x1f")
            result[f"{source}/{file}"] = json.loads(row[1])
        return result

    def clear(self) -> int:
        """Drop every checkpoint; returns how many were removed."""
        with self.db.write_scope(), self.db.transaction():
            cursor = self.db.execute(
                "DELETE FROM meta WHERE key LIKE ?", (_KEY_PREFIX + "%",)
            )
        return max(cursor.rowcount, 0)
