"""A JSON HTTP API over GenMapper (the paper's "interactive access").

The original system exposed a Java web GUI at izbi.de; this reproduction
exposes the same capabilities as a small WSGI application built on the
standard library, serving JSON:

====================================  =========================================
Endpoint                              Returns
====================================  =========================================
``GET /sources``                      the imported sources
``GET /sources/<name>``               one source + object count + coverage
``GET /sources/<name>/objects``       accessions, paginated: keyset
                                      (``after=`` cursor, index-seek) or
                                      ``limit``/``offset``; ``limit=0``
                                      streams the whole source
``GET /objects/<source>/<accession>`` object info (Figure 1 / 6c)
``GET /map?source=S&target=T``        the mapping S ↔ T (auto-Compose);
                                      repeated ``via=`` parameters pin the
                                      full composition path, in order
``GET /paths?source=S&target=T&k=3``  alternative mapping paths
``POST /query``                       run a query; body is either
                                      ``{"query": "ANNOTATE ..."}`` or a
                                      structured spec (source/targets/...)
``POST /query/explain``               the query plan, without executing;
                                      includes a ``cache`` block (per-stage
                                      cache status) and observed stage
                                      timings when tracing is enabled
``GET /stats``                        deployment statistics (Section 5)
``GET /metrics``                      content-negotiated: JSON snapshot
                                      (default, plus ``cache``/``slo``
                                      blocks), Prometheus text 0.0.4
                                      (``Accept: text/plain``), or
                                      OpenMetrics with exemplars
                                      (``Accept: application/openmetrics-
                                      text``); ``?format=json|prometheus|
                                      openmetrics`` overrides
``GET /slo``                          rolling availability/latency SLO
                                      windows with burn rates
``GET /debug/slow``                   the slow-query log ring buffer
``GET /debug/profile?seconds=5``      sampling-profiler folded stacks of
                                      the live process (plain text)
``GET /health``                       liveness probe (status + source count)
====================================  =========================================

The serving tier is built for heavy read traffic (``docs/http_api.md``):

* **Conditional GET** — every data ``GET`` response carries a strong
  ``ETag`` keyed on the database's monotonic data generation; a request
  presenting it via ``If-None-Match`` is answered ``304 Not Modified``
  without touching the repository, so clients and fronting caches
  revalidate for free until the next write.
* **Streaming** — large bodies (``/map``, ``/query``, object listings)
  are serialized incrementally in bounded chunks instead of one
  ``json.dumps`` buffer; ``?stream=1``/``?stream=0`` overrides the
  row-count threshold.  Streamed and buffered bodies are byte-identical.
* **Rate limiting** — an optional per-client token bucket sheds floods
  with ``429`` + ``Retry-After``; while the repository circuit breaker
  is not closed, each request costs extra tokens so the edge
  backpressures before the breaker melts (``docs/reliability.md``).

Every response carries an ``X-Request-ID`` header (honouring the one a
client sends); error payloads repeat it as ``request_id`` so client
reports correlate with wide events and the slow-query log.  Every
request is measured into the metrics registry — and, when a sink is
configured, emitted as one wide event — by
:class:`repro.obs.ObservabilityMiddleware`; see ``docs/observability.md``.

Use :func:`create_app` to get the WSGI callable and serve it with any WSGI
server (``python -m repro.web`` runs the threaded ``wsgiref`` server);
tests drive the callable directly without sockets.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
from collections.abc import Callable, Iterable
from urllib.parse import parse_qs

from repro.cache import MappingCache
from repro.core.genmapper import GenMapper
from repro.gam.enums import CombineMethod
from repro.gam.errors import GenMapperError
from repro.obs import (
    OPENMETRICS_CONTENT_TYPE,
    TEXT_CONTENT_TYPE,
    MetricsRegistry,
    ObservabilityMiddleware,
    Tracer,
    annotate_event,
    current_event,
    get_event_log,
    get_slo_tracker,
    get_slow_log,
    profile_for,
    render_openmetrics,
    render_text,
)
from repro.obs import get_registry as _default_registry
from repro.obs import get_tracer as _default_tracer
from repro.obs.middleware import _UNSET
from repro.query.language import parse_query
from repro.query.plan import plan_query
from repro.query.session import run_query, spec_digest_of
from repro.query.spec import QuerySpec, QueryTarget
from repro.reliability.breaker import CLOSED, CircuitOpenError, capture_degraded
from repro.reliability.deadline import (
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.reliability.ratelimit import RateLimiter, limiter_from_env
from repro.reliability.retry import RetryBudgetExceeded
from repro.web.streaming import StreamJson

StartResponse = Callable[[str, list[tuple[str, str]]], None]

_STATUS = {
    200: "200 OK",
    304: "304 Not Modified",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

#: JSON content type of every non-raw response.
_JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Route heads whose GET responses are generation-keyed (ETag-cacheable):
#: their bodies are pure functions of the database state, so one data
#: generation = one representation.  The observability surface
#: (/metrics, /slo, /debug/*, /health) changes on every request and is
#: never conditional.
_CACHEABLE_HEADS = frozenset({"sources", "objects", "map", "paths", "stats"})

#: Route heads exempt from rate limiting: liveness probes and metric
#: scrapers must keep working while clients are being shed.
_RATE_EXEMPT_HEADS = frozenset({"health", "metrics"})

#: Row-count threshold above which responses stream by default
#: (``REPRO_STREAM_THRESHOLD`` / ``create_app(stream_threshold=)``).
DEFAULT_STREAM_THRESHOLD = 1000

logger = logging.getLogger("repro.web")


class ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON body.

    ``headers`` are appended to the response (e.g. ``Retry-After`` on a
    429 admission rejection).
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Iterable[tuple[str, str]] = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = list(headers)


class RawResponse:
    """A non-JSON response body (Prometheus text, folded profiles)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: str | bytes, content_type: str) -> None:
        self.body = body.encode("utf-8") if isinstance(body, str) else body
        self.content_type = content_type


def stream_threshold_from_env(default: int = DEFAULT_STREAM_THRESHOLD) -> int:
    """The default streaming row threshold (``REPRO_STREAM_THRESHOLD``)."""
    raw = os.environ.get("REPRO_STREAM_THRESHOLD")
    if raw is None or not raw.strip():
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def create_app(
    genmapper: GenMapper,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    request_timeout: float | None = None,
    event_log=_UNSET,
    slow_log=_UNSET,
    slo=_UNSET,
    rate_limit: float | None = None,
    rate_burst: float | None = None,
    rate_limiter: RateLimiter | None = None,
    stream_threshold: int | None = None,
) -> Callable:
    """Build the WSGI application bound to one GenMapper instance.

    The returned callable is wrapped in
    :class:`~repro.obs.ObservabilityMiddleware`, so every request gets a
    request ID and is measured into ``registry`` (the process default
    unless one is passed — tests inject private instances).
    ``event_log``, ``slow_log`` and ``slo`` likewise default to the
    process-wide instances (configured via ``REPRO_EVENTS`` /
    ``REPRO_SLOW_MS`` / ``REPRO_SLO_*``); pass explicit instances — or
    ``None`` to disable — for isolation.

    ``request_timeout`` bounds every request to a time budget (seconds);
    a request may tighten — never extend — it with an
    ``X-Request-Timeout`` header.  A request that overruns is shed with
    ``503`` and a ``Retry-After`` header instead of pinning its worker
    thread (``docs/reliability.md``).  Responses served from stale cache
    entries while the repository is unavailable carry ``degraded: true``.

    ``rate_limit`` (requests/second per client, burst ceiling
    ``rate_burst``) installs a token-bucket admission check answering
    floods with ``429`` + ``Retry-After``; ``rate_limiter`` injects a
    pre-built :class:`~repro.reliability.ratelimit.RateLimiter` instead
    (tests pass one with a fake clock).  Unset, ``REPRO_RATE_LIMIT`` /
    ``REPRO_RATE_BURST`` decide; the default is no limiting.

    ``stream_threshold`` is the row count at or above which streamable
    responses are chunk-encoded by default (``REPRO_STREAM_THRESHOLD``,
    default 1000); ``?stream=1|0`` overrides per request.
    """
    if rate_limiter is None:
        if rate_limit is not None:
            rate_limiter = RateLimiter(
                rate_limit, burst=rate_burst, registry=registry
            )
        else:
            rate_limiter = limiter_from_env(registry)
    if stream_threshold is None:
        stream_threshold = stream_threshold_from_env()

    def app(environ: dict, start_response: StartResponse) -> Iterable[bytes]:
        extra_headers: list[tuple[str, str]] = []
        degraded = {"degraded": False, "reasons": ()}
        edge_registry = registry if registry is not None else _default_registry()
        method = environ.get("REQUEST_METHOD", "GET").upper()
        etag: str | None = None
        try:
            environ["repro.middleware"] = middleware
            _edge_admit(rate_limiter, genmapper, environ)
            if method == "GET":
                etag = _conditional_etag(genmapper, environ)
            if etag is not None and _if_none_match_matches(environ, etag):
                # Client revalidation hit: the representation the client
                # holds is still current at this data generation — answer
                # without touching the repository at all.
                edge_registry.counter("edge.not_modified").inc()
                annotate_event(not_modified=True, etag=etag)
                status, payload = 304, None
            else:
                # Nested scopes keep the tighter deadline, so the header
                # can only shrink the server-configured budget.
                with capture_degraded() as degraded, deadline_scope(
                    request_timeout
                ), deadline_scope(_header_timeout(environ)):
                    status, payload = _route(genmapper, environ, registry, tracer)
                    _annotate_outcome(genmapper)
                if degraded["degraded"]:
                    target = (
                        payload.payload
                        if isinstance(payload, StreamJson)
                        else payload if isinstance(payload, dict) else None
                    )
                    if target is not None:
                        target["degraded"] = True
                        target["degraded_reasons"] = list(degraded["reasons"])
                if isinstance(payload, StreamJson) and not _should_stream(
                    environ, payload, stream_threshold
                ):
                    payload = payload.materialize()
        except ApiError as exc:
            status, payload = exc.status, {"error": str(exc)}
            extra_headers.extend(exc.headers)
        except (DeadlineExceeded, CircuitOpenError, RetryBudgetExceeded) as exc:
            # Overload/unavailability: shed the request, tell the client
            # when to come back.  Checked before GenMapperError — the
            # first two subclass it but are 503s, not client errors.
            retry_after = getattr(exc, "retry_after", 1.0)
            status, payload = 503, {"error": str(exc)}
            extra_headers.append(
                ("Retry-After", str(max(1, round(retry_after))))
            )
        except GenMapperError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:
            # A handler bug must still produce a JSON error response, not
            # kill the request thread with an opaque server traceback.
            logger.exception(
                "unhandled error serving %s %s",
                method,
                environ.get("PATH_INFO", "/"),
            )
            status, payload = 500, {"error": f"internal server error: {exc}"}
        if status >= 400 and isinstance(payload, dict):
            # Error payloads repeat the request id (and any degraded
            # reasons) so client-side reports correlate with wide events.
            payload.setdefault(
                "request_id", environ.get("repro.request_id")
            )
            if degraded["degraded"]:
                payload.setdefault("degraded", True)
                payload.setdefault(
                    "degraded_reasons", list(degraded["reasons"])
                )
        if etag is not None and status in (200, 304):
            # no-cache = "revalidate before reuse": fronting caches may
            # store the body but must re-present the ETag, which is free
            # (304) until the data generation moves.
            extra_headers.append(("ETag", etag))
            extra_headers.append(("Cache-Control", "no-cache"))
        if status == 304:
            start_response(_STATUS[304], extra_headers)
            return [b""]
        if isinstance(payload, StreamJson):
            # Chunked serialization: no Content-Length (the server closes
            # or chunk-frames the connection), O(chunk) memory.
            edge_registry.counter("edge.streamed_responses").inc()
            annotate_event(streamed=True)
            start_response(
                _STATUS.get(status, f"{status} Error"),
                [("Content-Type", _JSON_CONTENT_TYPE), *extra_headers],
            )
            return payload.encode()
        if isinstance(payload, RawResponse):
            body = payload.body
            content_type = payload.content_type
        else:
            body = json.dumps(payload, indent=2).encode("utf-8")
            content_type = _JSON_CONTENT_TYPE
        start_response(
            _STATUS.get(status, f"{status} Error"),
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(body))),
                *extra_headers,
            ],
        )
        return [body]

    middleware = ObservabilityMiddleware(
        app,
        registry=registry,
        tracer=tracer,
        event_log=event_log,
        slow_log=slow_log,
        slo=slo,
    )
    return middleware


# -- edge admission / revalidation -----------------------------------------


def _client_key(environ: dict) -> str:
    """The rate-limiting identity of a request's sender.

    The first ``X-Forwarded-For`` hop when present (the client as seen
    by a fronting proxy), else the socket peer address.
    """
    forwarded = environ.get("HTTP_X_FORWARDED_FOR")
    if forwarded:
        client = forwarded.split(",", 1)[0].strip()
        if client:
            return client
    return environ.get("REMOTE_ADDR") or "unknown"


def _edge_admit(
    limiter: RateLimiter | None, genmapper: GenMapper, environ: dict
) -> None:
    """Charge the caller's token bucket; raise 429 when it is empty.

    While the repository circuit breaker is not closed, each admission
    costs ``limiter.degraded_cost`` tokens instead of one — the edge
    sheds harder exactly when the storage layer needs the headroom.
    """
    if limiter is None:
        return
    path = environ.get("PATH_INFO", "/")
    head = next((s for s in path.split("/") if s), "")
    if head in _RATE_EXEMPT_HEADS:
        return
    cost = 1.0
    breaker = genmapper.breaker
    if breaker is not None and breaker.state != CLOSED:
        cost = limiter.degraded_cost
    client = _client_key(environ)
    decision = limiter.check(client, cost)
    if decision.allowed:
        return
    retry_after = max(1, math.ceil(decision.retry_after))
    annotate_event(
        rate_limited=True,
        rate_client=client,
        rate_cost=cost,
        rate_retry_after=retry_after,
    )
    raise ApiError(
        429,
        f"rate limit exceeded for {client!r}; retry in {retry_after}s",
        headers=[("Retry-After", str(retry_after))],
    )


def _conditional_etag(genmapper: GenMapper, environ: dict) -> str | None:
    """The strong ``ETag`` of a data GET, or None for non-cacheable routes.

    Keyed on the monotonic data generation plus the full request target:
    data responses are deterministic functions of (database state, URL),
    so the pair identifies the representation exactly.  Any write bumps
    the generation and every previously issued ETag stops matching.
    """
    path = environ.get("PATH_INFO", "/")
    head = next((s for s in path.split("/") if s), "")
    if head not in _CACHEABLE_HEADS:
        return None
    generation = genmapper.db.data_generation()
    target = f"{path}?{environ.get('QUERY_STRING', '')}"
    digest = hashlib.sha1(target.encode("utf-8")).hexdigest()[:12]
    return f'"g{generation}-{digest}"'


def _if_none_match_matches(environ: dict, etag: str) -> bool:
    """True when the request's ``If-None-Match`` covers ``etag``."""
    raw = environ.get("HTTP_IF_NONE_MATCH")
    if not raw:
        return False
    candidates = []
    for token in raw.split(","):
        token = token.strip()
        if token == "*":
            return True
        if token.startswith("W/"):
            token = token[2:]
        candidates.append(token)
    return etag in candidates


def _should_stream(
    environ: dict, payload: StreamJson, threshold: int
) -> bool:
    """Stream or buffer one streamable response.

    An explicit ``?stream=1|0`` wins; otherwise responses at or above
    ``threshold`` rows — and unbounded listings, whose size is unknown
    up front — stream.
    """
    query = parse_qs(environ.get("QUERY_STRING", ""))
    raw = (query.get("stream", [""])[0] or "").strip().lower()
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    if raw:
        raise ApiError(400, f"invalid stream flag {raw!r} (use 1 or 0)")
    hint = payload.row_count_hint
    return hint is None or hint >= threshold


# -- request plumbing -------------------------------------------------------


def _annotate_outcome(genmapper: GenMapper) -> None:
    """Stamp reliability context onto the request's wide event (no-op
    when no event scope is active)."""
    if current_event() is None:
        return
    deadline = current_deadline()
    if deadline is not None:
        annotate_event(
            deadline_remaining_ms=round(deadline.remaining() * 1000, 1)
        )
    breaker = getattr(genmapper, "breaker", None)
    if breaker is not None:
        annotate_event(breaker_state=breaker.state)


def _header_timeout(environ: dict) -> float | None:
    """The ``X-Request-Timeout`` budget (seconds), or None.

    Invalid or non-positive values are rejected as a client error rather
    than silently ignored — a caller who asked for a bound should not
    run unbounded.
    """
    raw = environ.get("HTTP_X_REQUEST_TIMEOUT")
    if raw is None or not str(raw).strip():
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ApiError(400, f"invalid X-Request-Timeout: {raw!r}") from None
    if value <= 0:
        raise ApiError(400, "X-Request-Timeout must be positive")
    return value


def _metrics_format(environ: dict, query: dict) -> str:
    """Negotiate the ``/metrics`` representation.

    ``?format=`` wins; otherwise the ``Accept`` header decides.  The
    default stays JSON — the shape existing consumers (tests, scripts)
    rely on — while Prometheus scrapers, which advertise
    ``application/openmetrics-text`` and/or ``text/plain;version=0.0.4``,
    get the text formats.
    """
    fmt = (query.get("format", [""])[0] or "").strip().lower()
    if fmt == "json":
        return "json"
    if fmt == "openmetrics":
        return "openmetrics"
    if fmt in ("prometheus", "text"):
        return "text"
    if fmt:
        raise ApiError(400, f"unknown metrics format {fmt!r}")
    accept = environ.get("HTTP_ACCEPT", "") or ""
    if "application/openmetrics-text" in accept:
        return "openmetrics"
    if "application/json" in accept:
        return "json"
    if "text/plain" in accept:
        return "text"
    return "json"


def _route(
    genmapper: GenMapper,
    environ: dict,
    registry: MetricsRegistry | None,
    tracer: Tracer | None,
) -> tuple[int, object]:
    method = environ.get("REQUEST_METHOD", "GET").upper()
    path = environ.get("PATH_INFO", "/").rstrip("/") or "/"
    query = parse_qs(environ.get("QUERY_STRING", ""))
    segments = [segment for segment in path.split("/") if segment]
    registry = registry if registry is not None else _default_registry()
    tracer = tracer if tracer is not None else _default_tracer()
    middleware = environ.get("repro.middleware")

    if method == "GET":
        if segments == ["metrics"]:
            return _metrics_response(
                genmapper, environ, query, registry, middleware
            )
        if segments == ["slo"]:
            slo = middleware.slo if middleware is not None else get_slo_tracker()
            if slo is None:
                raise ApiError(404, "SLO tracking is disabled")
            return 200, slo.snapshot(publish=True, registry=registry)
        if segments == ["debug", "slow"]:
            slow = (
                middleware.slow_log if middleware is not None else get_slow_log()
            )
            if slow is None:
                raise ApiError(404, "the slow-query log is disabled")
            limit = _require_int(query, "limit", default=50, minimum=0)
            payload = slow.stats()
            payload["entries"] = slow.entries(limit)
            return 200, payload
        if segments == ["debug", "profile"]:
            seconds = _require_float(query, "seconds", default=5.0)
            seconds = min(30.0, max(0.05, seconds))
            hz = _require_float(query, "hz", default=0.0)
            profiler = profile_for(seconds, hz=hz if hz > 0 else None)
            return 200, RawResponse(
                profiler.folded(), "text/plain; charset=utf-8"
            )
        if segments == ["health"]:
            return 200, {
                "status": "ok",
                "sources": len(genmapper.sources()),
                "storage": genmapper.db.storage_info(),
                "request_id": environ.get("repro.request_id"),
            }
        return _route_get(genmapper, segments, query)
    if method == "POST":
        return _route_post(genmapper, segments, environ, registry, tracer)
    raise ApiError(405, f"method {method} not allowed")


def _metrics_response(
    genmapper: GenMapper,
    environ: dict,
    query: dict,
    registry: MetricsRegistry,
    middleware: ObservabilityMiddleware | None,
) -> tuple[int, object]:
    fmt = _metrics_format(environ, query)
    slo = middleware.slo if middleware is not None else get_slo_tracker()
    if fmt in ("text", "openmetrics"):
        # Publish the SLO gauges into the scraped registry first so
        # slo.burn_rate & co. appear in the same exposition.
        if slo is not None:
            slo.snapshot(publish=True, registry=registry)
        if fmt == "openmetrics":
            return 200, RawResponse(
                render_openmetrics(registry), OPENMETRICS_CONTENT_TYPE
            )
        return 200, RawResponse(render_text(registry), TEXT_CONTENT_TYPE)
    payload = registry.snapshot()
    payload["cache"] = genmapper.cache_stats()
    if slo is not None:
        payload["slo"] = slo.snapshot(publish=False)
    event_log = (
        middleware.event_log if middleware is not None else get_event_log()
    )
    if event_log is not None:
        payload["events"] = event_log.stats()
    slow = middleware.slow_log if middleware is not None else get_slow_log()
    if slow is not None and slow.enabled:
        payload["slowlog"] = slow.stats()
    return 200, payload


# -- pagination cursors ------------------------------------------------------


def _parse_cursor(raw: str) -> tuple[int | None, str]:
    """Split an ``after=`` value into ``(generation, accession)``.

    Cursors minted by this API look like ``g<generation>:<accession>``;
    a bare accession (no recognizable prefix) is accepted as a raw
    keyset position with no generation claim.
    """
    if raw.startswith("g"):
        head, sep, accession = raw[1:].partition(":")
        if sep and head.isdigit():
            return int(head), accession
    return None, raw


def _objects_page(
    genmapper: GenMapper, source: str, query: dict
) -> tuple[int, object]:
    """``GET /sources/<name>/objects`` — keyset or offset pagination.

    ``after=`` seeks the ``(source_id, accession)`` index past a cursor
    (O(page) at any depth); ``offset=`` keeps the legacy skip-scan.
    ``limit=0`` streams the entire remainder with bounded memory.  The
    response's ``next`` cursor is stamped with the data generation; a
    cursor presented after a write still pages correctly (keyset
    positions cannot duplicate or skip surviving rows) but is flagged
    ``cursor_stale`` so snapshot-sensitive clients can restart.
    """
    limit = _require_int(query, "limit", default=100, minimum=0)
    offset = _require_int(query, "offset", default=0, minimum=0)
    after_raw = query.get("after", [None])[0]
    repository = genmapper.repository
    generation = genmapper.db.data_generation()
    total = repository.count_objects(source)

    payload: dict = {"source": source, "total": total}
    after_accession: str | None = None
    if after_raw:
        cursor_generation, after_accession = _parse_cursor(after_raw)
        payload["after"] = after_raw
        if cursor_generation is not None and cursor_generation != generation:
            payload["cursor_stale"] = True
    else:
        payload["offset"] = offset
    payload["limit"] = limit
    payload["generation"] = generation

    if limit == 0:
        # Unbounded tail: rows come straight off the index cursor in
        # batches (GamDatabase.execute_read_iter) — O(chunk) resident.
        objects = (
            {"accession": o.accession, "text": o.text}
            for o in repository.iter_objects_of(source, after=after_accession)
        )
        payload["objects"] = None
        payload["next"] = None
        return 200, StreamJson(payload, "objects", objects, row_count_hint=None)

    # Fetch one row past the page to learn whether a next page exists.
    page = repository.objects_page(
        source, limit + 1, after=after_accession, offset=offset
    )
    has_more = len(page) > limit
    page = page[:limit]
    payload["objects"] = None
    payload["next"] = (
        f"g{generation}:{page[-1].accession}" if has_more and page else None
    )
    rows = ({"accession": o.accession, "text": o.text} for o in page)
    return 200, StreamJson(payload, "objects", rows, row_count_hint=len(page))


def _route_get(
    genmapper: GenMapper, segments: list[str], query: dict
) -> tuple[int, object]:
    if segments == ["sources"]:
        return 200, {"sources": [_source_json(genmapper, s)
                                 for s in genmapper.sources()]}
    if len(segments) == 2 and segments[0] == "sources":
        source = genmapper.source(segments[1])
        payload = _source_json(genmapper, source)
        from repro.analysis.coverage import source_coverage

        payload["coverage"] = [
            {
                "target": entry.target,
                "rel_type": entry.rel_type,
                "coverage": round(entry.coverage, 4),
                "associations": entry.associations,
            }
            for entry in source_coverage(genmapper.repository, source)
        ]
        return 200, payload
    if len(segments) == 3 and segments[0] == "sources" and segments[2] == "objects":
        return _objects_page(genmapper, segments[1], query)
    if len(segments) == 3 and segments[0] == "objects":
        __, source, accession = segments
        info = genmapper.object_info(source, accession)
        return 200, {
            "source": source,
            "accession": accession,
            "annotations": [
                {
                    "partner": partner,
                    "rel_type": rel_type.value,
                    "accession": assoc.target_accession,
                    "evidence": assoc.evidence,
                }
                for partner, rel_type, assoc in info
            ],
        }
    if segments == ["map"]:
        source = _require_param(query, "source")
        target = _require_param(query, "target")
        # Every repeated via= parameter matters, in order: dropping all
        # but the first would silently compose a different path.
        via = [value for value in query.get("via", []) if value]
        mapping = genmapper.map(source, target, via=via or None)
        payload = {
            "source": mapping.source,
            "target": mapping.target,
            "rel_type": mapping.rel_type.value if mapping.rel_type else None,
            "via": via,
            "association_count": len(mapping),
            "associations": None,
        }
        rows = (
            [a.source_accession, a.target_accession, a.evidence]
            for a in mapping
        )
        return 200, StreamJson(
            payload, "associations", rows, row_count_hint=len(mapping)
        )
    if segments == ["paths"]:
        source = _require_param(query, "source")
        target = _require_param(query, "target")
        k = _require_int(query, "k", default=3, minimum=1)
        paths = genmapper.find_paths(source, target, k=k)
        return 200, {"paths": [list(path) for path in paths]}
    if segments == ["stats"]:
        return 200, genmapper.stats()
    raise ApiError(404, f"no such resource: /{'/'.join(segments)}")


def _plan_payload(genmapper: GenMapper, spec: QuerySpec) -> dict:
    """The ``/query/explain`` plan + cache block (shared with the
    slow-query log, which captures it for over-threshold requests)."""
    plan = plan_query(genmapper, spec)
    payload = {
        "source": plan.source,
        "combine": plan.combine,
        "executable": plan.executable,
        "targets": [
            {
                "target": target.target,
                "kind": target.kind,
                "path": list(target.path),
                "estimated_associations": target.estimated_associations,
                "negated": target.negated,
            }
            for target in plan.targets
        ],
    }
    payload["cache"] = _explain_cache(genmapper, spec)
    names = {plan.source}
    for target in plan.targets:
        names.add(target.target)
        names.update(target.path)
    placement = genmapper.db.shard_placement(sorted(names))
    if placement is not None:
        payload["shards"] = placement
    return payload


def _route_post(
    genmapper: GenMapper,
    segments: list[str],
    environ: dict,
    registry: MetricsRegistry,
    tracer: Tracer,
) -> tuple[int, object]:
    if segments not in (["query"], ["query", "explain"]):
        raise ApiError(404, f"no such resource: /{'/'.join(segments)}")
    spec = _parse_body_spec(environ)
    state = current_event()
    if state is not None:
        state.fields["spec_digest"] = spec_digest_of(spec)
        # Deferred plan capture: only requests that actually cross the
        # slow threshold pay for planning a second time.
        state.slow_capture = lambda: _plan_payload(genmapper, spec)
    if segments == ["query", "explain"]:
        payload = _plan_payload(genmapper, spec)
        if tracer.enabled:
            # Observed per-stage latency summaries (seconds) collected by
            # the span instrumentation since tracing was enabled — the
            # empirical counterpart of the estimates above.  Spans land in
            # the tracer's registry (the process default unless the tracer
            # was built with its own), so read them from there.
            stage_registry = (
                tracer.registry if tracer.registry is not None else registry
            )
            payload["observed_stage_timings"] = stage_registry.stage_timings()
        return 200, payload
    view = run_query(genmapper, spec)
    payload = {
        "columns": list(view.columns),
        "rows": None,
        "row_count": len(view),
    }
    rows = (list(row) for row in view.rows)
    return 200, StreamJson(payload, "rows", rows, row_count_hint=len(view))


def _explain_cache(genmapper: GenMapper, spec: QuerySpec) -> dict:
    """The explain response's cache block: per-target and whole-view
    cache status against the *current* data generation, plus the cache's
    live counters.  Probing is side-effect free (no hit/miss accounting).
    """
    cache = genmapper.cache
    if cache is None:
        return {"enabled": False}
    label = "product"  # the default evidence combiner queries run with
    targets = []
    for target in spec.targets:
        if target.via:
            key = MappingCache.composed_key(
                (spec.source, *target.via, target.name), label
            )
        else:
            key = MappingCache.mapping_key(
                spec.source, target.name, f"auto#{label}"
            )
        deps = cache.dependencies(key)
        targets.append(
            {
                "target": target.name,
                "cached": cache.is_cached(key),
                # Scoped invalidation status: which sources this entry
                # validates against, and the generation it must reach.
                "dependencies": list(deps) if deps else None,
                "required_generation": (
                    genmapper.db.generation_of(deps) if deps else None
                ),
            }
        )
    view_key = GenMapper.view_cache_key(
        spec.source,
        [target.to_target_spec() for target in spec.targets],
        spec.accessions,
        spec.combine,
        "memory",
        label,
    )
    vector = genmapper.db.generation_vector()
    return {
        "enabled": True,
        "targets": targets,
        "view_cached": cache.is_cached(view_key),
        "stats": cache.stats(),
        # Per-source generations behind scoped invalidation: writes to a
        # source invalidate only entries depending on it; the floor is
        # the last untagged (external/admin) write.
        "generation_vector": {
            "floor": vector["floor"],
            "sources": vector["sources"],
        },
    }


def _parse_body_spec(environ: dict) -> QuerySpec:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    raw = environ["wsgi.input"].read(length) if length else b""
    if not raw:
        raise ApiError(400, "request body required")
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ApiError(400, f"invalid JSON body: {exc}") from exc
    # Valid JSON is not necessarily a valid body: a list/string/number
    # used to slip through to the field accesses below and surface as a
    # 500; a malformed request is the client's error, report it as one.
    if not isinstance(body, dict):
        raise ApiError(
            400,
            f"query body must be a JSON object, got {type(body).__name__}",
        )
    if "query" in body:
        if not isinstance(body["query"], str):
            raise ApiError(400, "the 'query' field must be a string")
        return parse_query(body["query"])
    try:
        targets = tuple(
            QueryTarget(
                name=target["name"],
                accessions=(
                    frozenset(target["accessions"])
                    if target.get("accessions") is not None
                    else None
                ),
                negated=bool(target.get("negated", False)),
                via=tuple(target.get("via", ())),
            )
            for target in body["targets"]
        )
        return QuerySpec(
            source=body["source"],
            accessions=(
                frozenset(body["accessions"])
                if body.get("accessions") is not None
                else None
            ),
            targets=targets,
            combine=CombineMethod.parse(body.get("combine", "AND")),
        )
    except (KeyError, TypeError) as exc:
        raise ApiError(400, f"malformed query spec: {exc}") from exc


def _require_param(query: dict, name: str) -> str:
    values = query.get(name)
    if not values or not values[0]:
        raise ApiError(400, f"missing query parameter {name!r}")
    return values[0]


def _require_int(
    query: dict,
    name: str,
    default: int,
    minimum: int = 0,
    maximum: int | None = None,
) -> int:
    """An integer query parameter, defaulted and range-checked.

    Malformed or out-of-range values are the client's error (400), never
    a server traceback — and never silently reinterpreted: a negative
    ``offset`` used to slice from the *end* of the object list, returning
    a wrong page that still echoed the requested offset.
    """
    raw = query.get(name, [None])[0]
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ApiError(
            400, f"query parameter {name!r} must be an integer, got {raw!r}"
        ) from None
    if value < minimum:
        raise ApiError(400, f"query parameter {name!r} must be >= {minimum}")
    if maximum is not None and value > maximum:
        raise ApiError(400, f"query parameter {name!r} must be <= {maximum}")
    return value


def _require_float(query: dict, name: str, default: float) -> float:
    """A float query parameter, defaulted; malformed values are 400s."""
    raw = query.get(name, [None])[0]
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        raise ApiError(
            400, f"query parameter {name!r} must be a number, got {raw!r}"
        ) from None


def _source_json(genmapper: GenMapper, source) -> dict:
    return {
        "name": source.name,
        "content": source.content.value,
        "structure": source.structure.value,
        "release": source.release,
        "objects": genmapper.repository.count_objects(source),
    }
