"""A JSON HTTP API over GenMapper (the paper's "interactive access").

The original system exposed a Java web GUI at izbi.de; this reproduction
exposes the same capabilities as a small WSGI application built on the
standard library, serving JSON:

====================================  =========================================
Endpoint                              Returns
====================================  =========================================
``GET /sources``                      the imported sources
``GET /sources/<name>``               one source + object count + coverage
``GET /sources/<name>/objects``       accessions (paginated: limit/offset)
``GET /objects/<source>/<accession>`` object info (Figure 1 / 6c)
``GET /map?source=S&target=T``        the mapping S ↔ T (auto-Compose)
``GET /paths?source=S&target=T&k=3``  alternative mapping paths
``POST /query``                       run a query; body is either
                                      ``{"query": "ANNOTATE ..."}`` or a
                                      structured spec (source/targets/...)
``POST /query/explain``               the query plan, without executing;
                                      includes a ``cache`` block (per-stage
                                      cache status) and observed stage
                                      timings when tracing is enabled
``GET /stats``                        deployment statistics (Section 5)
``GET /metrics``                      content-negotiated: JSON snapshot
                                      (default, plus ``cache``/``slo``
                                      blocks), Prometheus text 0.0.4
                                      (``Accept: text/plain``), or
                                      OpenMetrics with exemplars
                                      (``Accept: application/openmetrics-
                                      text``); ``?format=json|prometheus|
                                      openmetrics`` overrides
``GET /slo``                          rolling availability/latency SLO
                                      windows with burn rates
``GET /debug/slow``                   the slow-query log ring buffer
``GET /debug/profile?seconds=5``      sampling-profiler folded stacks of
                                      the live process (plain text)
``GET /health``                       liveness probe (status + source count)
====================================  =========================================

Every response carries an ``X-Request-ID`` header (honouring the one a
client sends); error payloads repeat it as ``request_id`` so client
reports correlate with wide events and the slow-query log.  Every
request is measured into the metrics registry — and, when a sink is
configured, emitted as one wide event — by
:class:`repro.obs.ObservabilityMiddleware`; see ``docs/observability.md``.

Use :func:`create_app` to get the WSGI callable and serve it with any WSGI
server (``python -m repro.web`` runs ``wsgiref.simple_server``); tests
drive the callable directly without sockets.
"""

from __future__ import annotations

import json
import logging
from collections.abc import Callable, Iterable
from urllib.parse import parse_qs

from repro.cache import MappingCache
from repro.cache.mapping_cache import spec_digest
from repro.core.genmapper import GenMapper
from repro.gam.enums import CombineMethod
from repro.gam.errors import GenMapperError
from repro.obs import (
    OPENMETRICS_CONTENT_TYPE,
    TEXT_CONTENT_TYPE,
    MetricsRegistry,
    ObservabilityMiddleware,
    Tracer,
    annotate_event,
    current_event,
    get_event_log,
    get_slo_tracker,
    get_slow_log,
    profile_for,
    render_openmetrics,
    render_text,
)
from repro.obs import get_registry as _default_registry
from repro.obs import get_tracer as _default_tracer
from repro.obs.middleware import _UNSET
from repro.query.language import parse_query
from repro.query.plan import plan_query
from repro.query.session import run_query
from repro.query.spec import QuerySpec, QueryTarget
from repro.reliability.breaker import CircuitOpenError, capture_degraded
from repro.reliability.deadline import (
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.reliability.retry import RetryBudgetExceeded

StartResponse = Callable[[str, list[tuple[str, str]]], None]

_STATUS = {
    200: "200 OK",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

logger = logging.getLogger("repro.web")


class ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class RawResponse:
    """A non-JSON response body (Prometheus text, folded profiles)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: str | bytes, content_type: str) -> None:
        self.body = body.encode("utf-8") if isinstance(body, str) else body
        self.content_type = content_type


def create_app(
    genmapper: GenMapper,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    request_timeout: float | None = None,
    event_log=_UNSET,
    slow_log=_UNSET,
    slo=_UNSET,
) -> Callable:
    """Build the WSGI application bound to one GenMapper instance.

    The returned callable is wrapped in
    :class:`~repro.obs.ObservabilityMiddleware`, so every request gets a
    request ID and is measured into ``registry`` (the process default
    unless one is passed — tests inject private instances).
    ``event_log``, ``slow_log`` and ``slo`` likewise default to the
    process-wide instances (configured via ``REPRO_EVENTS`` /
    ``REPRO_SLOW_MS`` / ``REPRO_SLO_*``); pass explicit instances — or
    ``None`` to disable — for isolation.

    ``request_timeout`` bounds every request to a time budget (seconds);
    a request may tighten — never extend — it with an
    ``X-Request-Timeout`` header.  A request that overruns is shed with
    ``503`` and a ``Retry-After`` header instead of pinning its worker
    thread (``docs/reliability.md``).  Responses served from stale cache
    entries while the repository is unavailable carry ``degraded: true``.
    """

    def app(environ: dict, start_response: StartResponse) -> Iterable[bytes]:
        extra_headers: list[tuple[str, str]] = []
        degraded = {"degraded": False, "reasons": ()}
        try:
            # Nested scopes keep the tighter deadline, so the header can
            # only shrink the server-configured budget.
            environ["repro.middleware"] = middleware
            with capture_degraded() as degraded, deadline_scope(
                request_timeout
            ), deadline_scope(_header_timeout(environ)):
                status, payload = _route(genmapper, environ, registry, tracer)
                _annotate_outcome(genmapper)
            if degraded["degraded"] and isinstance(payload, dict):
                payload["degraded"] = True
                payload["degraded_reasons"] = list(degraded["reasons"])
        except ApiError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except (DeadlineExceeded, CircuitOpenError, RetryBudgetExceeded) as exc:
            # Overload/unavailability: shed the request, tell the client
            # when to come back.  Checked before GenMapperError — the
            # first two subclass it but are 503s, not client errors.
            retry_after = getattr(exc, "retry_after", 1.0)
            status, payload = 503, {"error": str(exc)}
            extra_headers.append(
                ("Retry-After", str(max(1, round(retry_after))))
            )
        except GenMapperError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:
            # A handler bug must still produce a JSON error response, not
            # kill the request thread with an opaque server traceback.
            logger.exception(
                "unhandled error serving %s %s",
                environ.get("REQUEST_METHOD", "GET"),
                environ.get("PATH_INFO", "/"),
            )
            status, payload = 500, {"error": f"internal server error: {exc}"}
        if status >= 400 and isinstance(payload, dict):
            # Error payloads repeat the request id (and any degraded
            # reasons) so client-side reports correlate with wide events.
            payload.setdefault(
                "request_id", environ.get("repro.request_id")
            )
            if degraded["degraded"]:
                payload.setdefault("degraded", True)
                payload.setdefault(
                    "degraded_reasons", list(degraded["reasons"])
                )
        if isinstance(payload, RawResponse):
            body = payload.body
            content_type = payload.content_type
        else:
            body = json.dumps(payload, indent=2).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        start_response(
            _STATUS.get(status, f"{status} Error"),
            [
                ("Content-Type", content_type),
                ("Content-Length", str(len(body))),
                *extra_headers,
            ],
        )
        return [body]

    middleware = ObservabilityMiddleware(
        app,
        registry=registry,
        tracer=tracer,
        event_log=event_log,
        slow_log=slow_log,
        slo=slo,
    )
    return middleware


def _annotate_outcome(genmapper: GenMapper) -> None:
    """Stamp reliability context onto the request's wide event (no-op
    when no event scope is active)."""
    if current_event() is None:
        return
    deadline = current_deadline()
    if deadline is not None:
        annotate_event(
            deadline_remaining_ms=round(deadline.remaining() * 1000, 1)
        )
    breaker = getattr(genmapper, "breaker", None)
    if breaker is not None:
        annotate_event(breaker_state=breaker.state)


def _header_timeout(environ: dict) -> float | None:
    """The ``X-Request-Timeout`` budget (seconds), or None.

    Invalid or non-positive values are rejected as a client error rather
    than silently ignored — a caller who asked for a bound should not
    run unbounded.
    """
    raw = environ.get("HTTP_X_REQUEST_TIMEOUT")
    if raw is None or not str(raw).strip():
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ApiError(400, f"invalid X-Request-Timeout: {raw!r}") from None
    if value <= 0:
        raise ApiError(400, "X-Request-Timeout must be positive")
    return value


def _metrics_format(environ: dict, query: dict) -> str:
    """Negotiate the ``/metrics`` representation.

    ``?format=`` wins; otherwise the ``Accept`` header decides.  The
    default stays JSON — the shape existing consumers (tests, scripts)
    rely on — while Prometheus scrapers, which advertise
    ``application/openmetrics-text`` and/or ``text/plain;version=0.0.4``,
    get the text formats.
    """
    fmt = (query.get("format", [""])[0] or "").strip().lower()
    if fmt == "json":
        return "json"
    if fmt == "openmetrics":
        return "openmetrics"
    if fmt in ("prometheus", "text"):
        return "text"
    if fmt:
        raise ApiError(400, f"unknown metrics format {fmt!r}")
    accept = environ.get("HTTP_ACCEPT", "") or ""
    if "application/openmetrics-text" in accept:
        return "openmetrics"
    if "application/json" in accept:
        return "json"
    if "text/plain" in accept:
        return "text"
    return "json"


def _route(
    genmapper: GenMapper,
    environ: dict,
    registry: MetricsRegistry | None,
    tracer: Tracer | None,
) -> tuple[int, object]:
    method = environ.get("REQUEST_METHOD", "GET").upper()
    path = environ.get("PATH_INFO", "/").rstrip("/") or "/"
    query = parse_qs(environ.get("QUERY_STRING", ""))
    segments = [segment for segment in path.split("/") if segment]
    registry = registry if registry is not None else _default_registry()
    tracer = tracer if tracer is not None else _default_tracer()
    middleware = environ.get("repro.middleware")

    if method == "GET":
        if segments == ["metrics"]:
            return _metrics_response(
                genmapper, environ, query, registry, middleware
            )
        if segments == ["slo"]:
            slo = middleware.slo if middleware is not None else get_slo_tracker()
            if slo is None:
                raise ApiError(404, "SLO tracking is disabled")
            return 200, slo.snapshot(publish=True, registry=registry)
        if segments == ["debug", "slow"]:
            slow = (
                middleware.slow_log if middleware is not None else get_slow_log()
            )
            if slow is None:
                raise ApiError(404, "the slow-query log is disabled")
            limit = int(query.get("limit", ["50"])[0])
            payload = slow.stats()
            payload["entries"] = slow.entries(limit)
            return 200, payload
        if segments == ["debug", "profile"]:
            seconds = float(query.get("seconds", ["5"])[0])
            seconds = min(30.0, max(0.05, seconds))
            hz = query.get("hz", [None])[0]
            profiler = profile_for(
                seconds, hz=float(hz) if hz else None
            )
            return 200, RawResponse(
                profiler.folded(), "text/plain; charset=utf-8"
            )
        if segments == ["health"]:
            return 200, {
                "status": "ok",
                "sources": len(genmapper.sources()),
                "request_id": environ.get("repro.request_id"),
            }
        return _route_get(genmapper, segments, query)
    if method == "POST":
        return _route_post(genmapper, segments, environ, registry, tracer)
    raise ApiError(405, f"method {method} not allowed")


def _metrics_response(
    genmapper: GenMapper,
    environ: dict,
    query: dict,
    registry: MetricsRegistry,
    middleware: ObservabilityMiddleware | None,
) -> tuple[int, object]:
    fmt = _metrics_format(environ, query)
    slo = middleware.slo if middleware is not None else get_slo_tracker()
    if fmt in ("text", "openmetrics"):
        # Publish the SLO gauges into the scraped registry first so
        # slo.burn_rate & co. appear in the same exposition.
        if slo is not None:
            slo.snapshot(publish=True, registry=registry)
        if fmt == "openmetrics":
            return 200, RawResponse(
                render_openmetrics(registry), OPENMETRICS_CONTENT_TYPE
            )
        return 200, RawResponse(render_text(registry), TEXT_CONTENT_TYPE)
    payload = registry.snapshot()
    payload["cache"] = genmapper.cache_stats()
    if slo is not None:
        payload["slo"] = slo.snapshot(publish=False)
    event_log = (
        middleware.event_log if middleware is not None else get_event_log()
    )
    if event_log is not None:
        payload["events"] = event_log.stats()
    slow = middleware.slow_log if middleware is not None else get_slow_log()
    if slow is not None and slow.enabled:
        payload["slowlog"] = slow.stats()
    return 200, payload


def _route_get(
    genmapper: GenMapper, segments: list[str], query: dict
) -> tuple[int, object]:
    if segments == ["sources"]:
        return 200, {"sources": [_source_json(genmapper, s)
                                 for s in genmapper.sources()]}
    if len(segments) == 2 and segments[0] == "sources":
        source = genmapper.source(segments[1])
        payload = _source_json(genmapper, source)
        from repro.analysis.coverage import source_coverage

        payload["coverage"] = [
            {
                "target": entry.target,
                "rel_type": entry.rel_type,
                "coverage": round(entry.coverage, 4),
                "associations": entry.associations,
            }
            for entry in source_coverage(genmapper.repository, source)
        ]
        return 200, payload
    if len(segments) == 3 and segments[0] == "sources" and segments[2] == "objects":
        limit = int(query.get("limit", ["100"])[0])
        offset = int(query.get("offset", ["0"])[0])
        objects = genmapper.objects(segments[1])
        page = objects[offset: offset + limit]
        return 200, {
            "source": segments[1],
            "total": len(objects),
            "offset": offset,
            "objects": [
                {"accession": o.accession, "text": o.text} for o in page
            ],
        }
    if len(segments) == 3 and segments[0] == "objects":
        __, source, accession = segments
        info = genmapper.object_info(source, accession)
        return 200, {
            "source": source,
            "accession": accession,
            "annotations": [
                {
                    "partner": partner,
                    "rel_type": rel_type.value,
                    "accession": assoc.target_accession,
                    "evidence": assoc.evidence,
                }
                for partner, rel_type, assoc in info
            ],
        }
    if segments == ["map"]:
        source = _require_param(query, "source")
        target = _require_param(query, "target")
        via = query.get("via", [None])[0]
        mapping = genmapper.map(
            source, target, via=[via] if via else None
        )
        return 200, {
            "source": mapping.source,
            "target": mapping.target,
            "rel_type": mapping.rel_type.value if mapping.rel_type else None,
            "associations": [
                [a.source_accession, a.target_accession, a.evidence]
                for a in mapping
            ],
        }
    if segments == ["paths"]:
        source = _require_param(query, "source")
        target = _require_param(query, "target")
        k = int(query.get("k", ["3"])[0])
        paths = genmapper.find_paths(source, target, k=k)
        return 200, {"paths": [list(path) for path in paths]}
    if segments == ["stats"]:
        return 200, genmapper.stats()
    raise ApiError(404, f"no such resource: /{'/'.join(segments)}")


def _query_spec_digest(spec: QuerySpec) -> str:
    """A stable short digest identifying the query shape — stamped on
    wide events and slow-log entries so repeated offenders group."""
    return spec_digest(
        spec.source,
        tuple(sorted(spec.accessions)) if spec.accessions else None,
        tuple(
            (
                target.name,
                tuple(sorted(target.accessions)) if target.accessions else None,
                target.negated,
                target.via,
            )
            for target in spec.targets
        ),
        spec.combine.value,
    )


def _plan_payload(genmapper: GenMapper, spec: QuerySpec) -> dict:
    """The ``/query/explain`` plan + cache block (shared with the
    slow-query log, which captures it for over-threshold requests)."""
    plan = plan_query(genmapper, spec)
    payload = {
        "source": plan.source,
        "combine": plan.combine,
        "executable": plan.executable,
        "targets": [
            {
                "target": target.target,
                "kind": target.kind,
                "path": list(target.path),
                "estimated_associations": target.estimated_associations,
                "negated": target.negated,
            }
            for target in plan.targets
        ],
    }
    payload["cache"] = _explain_cache(genmapper, spec)
    return payload


def _route_post(
    genmapper: GenMapper,
    segments: list[str],
    environ: dict,
    registry: MetricsRegistry,
    tracer: Tracer,
) -> tuple[int, object]:
    if segments not in (["query"], ["query", "explain"]):
        raise ApiError(404, f"no such resource: /{'/'.join(segments)}")
    spec = _parse_body_spec(environ)
    state = current_event()
    if state is not None:
        state.fields["spec_digest"] = _query_spec_digest(spec)
        # Deferred plan capture: only requests that actually cross the
        # slow threshold pay for planning a second time.
        state.slow_capture = lambda: _plan_payload(genmapper, spec)
    if segments == ["query", "explain"]:
        payload = _plan_payload(genmapper, spec)
        if tracer.enabled:
            # Observed per-stage latency summaries (seconds) collected by
            # the span instrumentation since tracing was enabled — the
            # empirical counterpart of the estimates above.  Spans land in
            # the tracer's registry (the process default unless the tracer
            # was built with its own), so read them from there.
            stage_registry = (
                tracer.registry if tracer.registry is not None else registry
            )
            payload["observed_stage_timings"] = stage_registry.stage_timings()
        return 200, payload
    view = run_query(genmapper, spec)
    return 200, {
        "columns": list(view.columns),
        "rows": [list(row) for row in view.rows],
        "row_count": len(view),
    }


def _explain_cache(genmapper: GenMapper, spec: QuerySpec) -> dict:
    """The explain response's cache block: per-target and whole-view
    cache status against the *current* data generation, plus the cache's
    live counters.  Probing is side-effect free (no hit/miss accounting).
    """
    cache = genmapper.cache
    if cache is None:
        return {"enabled": False}
    label = "product"  # the default evidence combiner queries run with
    targets = []
    for target in spec.targets:
        if target.via:
            key = MappingCache.composed_key(
                (spec.source, *target.via, target.name), label
            )
        else:
            key = MappingCache.mapping_key(
                spec.source, target.name, f"auto#{label}"
            )
        targets.append(
            {"target": target.name, "cached": cache.is_cached(key)}
        )
    view_key = GenMapper.view_cache_key(
        spec.source,
        [target.to_target_spec() for target in spec.targets],
        spec.accessions,
        spec.combine,
        "memory",
        label,
    )
    return {
        "enabled": True,
        "targets": targets,
        "view_cached": cache.is_cached(view_key),
        "stats": cache.stats(),
    }


def _parse_body_spec(environ: dict) -> QuerySpec:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    raw = environ["wsgi.input"].read(length) if length else b""
    if not raw:
        raise ApiError(400, "request body required")
    try:
        body = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ApiError(400, f"invalid JSON body: {exc}") from exc
    # Valid JSON is not necessarily a valid body: a list/string/number
    # used to slip through to the field accesses below and surface as a
    # 500; a malformed request is the client's error, report it as one.
    if not isinstance(body, dict):
        raise ApiError(
            400,
            f"query body must be a JSON object, got {type(body).__name__}",
        )
    if "query" in body:
        if not isinstance(body["query"], str):
            raise ApiError(400, "the 'query' field must be a string")
        return parse_query(body["query"])
    try:
        targets = tuple(
            QueryTarget(
                name=target["name"],
                accessions=(
                    frozenset(target["accessions"])
                    if target.get("accessions") is not None
                    else None
                ),
                negated=bool(target.get("negated", False)),
                via=tuple(target.get("via", ())),
            )
            for target in body["targets"]
        )
        return QuerySpec(
            source=body["source"],
            accessions=(
                frozenset(body["accessions"])
                if body.get("accessions") is not None
                else None
            ),
            targets=targets,
            combine=CombineMethod.parse(body.get("combine", "AND")),
        )
    except (KeyError, TypeError) as exc:
        raise ApiError(400, f"malformed query spec: {exc}") from exc


def _require_param(query: dict, name: str) -> str:
    values = query.get(name)
    if not values or not values[0]:
        raise ApiError(400, f"missing query parameter {name!r}")
    return values[0]


def _source_json(genmapper: GenMapper, source) -> dict:
    return {
        "name": source.name,
        "content": source.content.value,
        "structure": source.structure.value,
        "release": source.release,
        "objects": genmapper.repository.count_objects(source),
    }
