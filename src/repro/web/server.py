"""WSGI serving helpers: a threaded server over the pooled storage layer.

``wsgiref.simple_server`` handles one request at a time; with the storage
layer now hosting a per-thread connection pool, WAL journaling and a
serialized writer path (see ``docs/storage.md``), concurrent request
handling is safe — :class:`ThreadingWSGIServer` enables it by mixing
:class:`socketserver.ThreadingMixIn` into the reference server, one daemon
thread per request.
"""

from __future__ import annotations

import socketserver
from collections.abc import Callable
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server


class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    """The reference WSGI server, one handler thread per request."""

    #: Request threads must not keep the process alive past shutdown.
    daemon_threads = True


class StreamingRequestHandler(WSGIRequestHandler):
    """Request handler tuned for chunk-at-a-time response bodies.

    Streamed responses (see ``repro.web.streaming``) are written as a
    sequence of ~32 KB chunks; with Nagle's algorithm on, small trailing
    writes sit in the kernel until an ACK arrives, adding up to an RTT
    of tail latency per response.  ``TCP_NODELAY`` flushes each chunk as
    soon as the handler yields it.
    """

    disable_nagle_algorithm = True


class QuietRequestHandler(StreamingRequestHandler):
    """Request handler that suppresses per-request stderr logging."""

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass


def make_threading_server(
    host: str, port: int, app: Callable, quiet: bool = False
) -> WSGIServer:
    """Build a :class:`ThreadingWSGIServer` bound to ``host:port``.

    ``quiet=True`` suppresses the per-request access log — used by tests
    and benchmarks that spin up a real socket server.
    """
    handler = QuietRequestHandler if quiet else StreamingRequestHandler
    return make_server(
        host, port, app, server_class=ThreadingWSGIServer, handler_class=handler
    )
