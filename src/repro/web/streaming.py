"""Incremental JSON serialization for large HTTP responses.

The buffered serving path renders a whole response as one
``json.dumps(payload, indent=2)`` byte string — for a large mapping or
annotation view that second copy of the result can dwarf the result
itself.  :class:`StreamJson` instead carries the response as a small
envelope dict plus one *streamed field* (the row array) and serializes
it incrementally: rows are encoded one at a time and coalesced into
bounded chunks, so serialization memory is O(chunk) regardless of the
row count.

The encoder is **byte-identical** to ``json.dumps(payload, indent=2)``
over the materialized payload — asserted by the edge test suite — so
clients, checksums and the `ETag` protocol cannot tell the two paths
apart; only the server's memory profile differs (``docs/http_api.md``).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator

#: Target size of one yielded body chunk (bytes of UTF-8 text).
DEFAULT_CHUNK_BYTES = 32 * 1024


def _nested(value: object, level: int) -> str:
    """``json.dumps(value, indent=2)`` re-indented to nesting ``level``.

    ``json.dumps`` renders a nested value with indentation relative to
    its container; re-prefixing every continuation line of a standalone
    rendering with the container's pad produces exactly the same text.
    """
    text = json.dumps(value, indent=2)
    if "\n" not in text:
        return text
    return text.replace("\n", "\n" + "  " * level)


class StreamJson:
    """A JSON object response whose ``stream_field`` value is an iterable
    serialized lazily.

    ``payload`` holds every envelope field in response order; the value
    stored under ``stream_field`` is ignored (conventionally ``None``)
    and replaced by ``rows`` during encoding.  ``row_count_hint`` lets
    the edge decide buffered-versus-streamed without consuming the rows.
    """

    __slots__ = ("payload", "stream_field", "rows", "row_count_hint")

    def __init__(
        self,
        payload: dict,
        stream_field: str,
        rows: Iterable,
        row_count_hint: int | None = None,
    ) -> None:
        if stream_field not in payload:
            raise ValueError(f"stream field {stream_field!r} not in payload")
        self.payload = payload
        self.stream_field = stream_field
        self.rows = rows
        self.row_count_hint = row_count_hint

    def materialize(self) -> dict:
        """The plain payload dict for the buffered path (rows realized)."""
        self.payload[self.stream_field] = list(self.rows)
        return self.payload

    def iter_text(self) -> Iterator[str]:
        """Text fragments forming the indent-2 rendering of the payload."""
        yield "{"
        first = True
        for name, value in self.payload.items():
            yield ("" if first else ",") + "\n  " + json.dumps(name) + ": "
            first = False
            if name == self.stream_field:
                yield from self._iter_array()
            else:
                yield _nested(value, 1)
        yield "\n}" if not first else "}"

    def _iter_array(self) -> Iterator[str]:
        first = True
        for row in self.rows:
            yield ("[" if first else ",") + "\n    " + _nested(row, 2)
            first = False
        yield "[]" if first else "\n  ]"

    def encode(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> Iterator[bytes]:
        """UTF-8 body chunks of roughly ``chunk_bytes`` each."""
        return encode_chunks(self.iter_text(), chunk_bytes)


def encode_chunks(
    parts: Iterable[str], chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> Iterator[bytes]:
    """Coalesce text fragments into encoded chunks of bounded size.

    Row-at-a-time fragments are far too small to hand to a socket one by
    one; buffering to ``chunk_bytes`` keeps syscall counts sane while
    bounding resident serialization state.
    """
    buffer: list[str] = []
    size = 0
    for part in parts:
        buffer.append(part)
        size += len(part)
        if size >= chunk_bytes:
            yield "".join(buffer).encode("utf-8")
            buffer.clear()
            size = 0
    if buffer:
        yield "".join(buffer).encode("utf-8")
