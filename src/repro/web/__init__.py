"""HTTP JSON API over GenMapper (the paper's interactive access)."""

from repro.web.app import ApiError, create_app

__all__ = ["ApiError", "create_app"]
