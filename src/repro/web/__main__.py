"""Serve the GenMapper JSON API: ``python -m repro.web --db gam.db``."""

from __future__ import annotations

import argparse

from repro.core.genmapper import GenMapper
from repro.web.app import create_app
from repro.web.server import make_threading_server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.web", description="Serve the GenMapper JSON API"
    )
    parser.add_argument("--db", default=":memory:",
                        help="GAM database path (default: in-memory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8350)
    parser.add_argument(
        "--pool-size", type=int, default=None, metavar="N",
        help="max pooled database connections (on-disk databases;"
        " default: 8). See docs/storage.md.",
    )
    parser.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="max entries in the mapping cache"
             " (default: REPRO_CACHE_SIZE or 256; see docs/performance.md)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the mapping cache (same as REPRO_CACHE=off)",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="populate an in-memory database with a synthetic universe",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request time budget; overruns are shed with 503 +"
        " Retry-After (see docs/reliability.md)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable tracing spans (adds observed_stage_timings to"
        " /query/explain and span.* histograms to /metrics)",
    )
    parser.add_argument(
        "--events-out", metavar="FILE",
        help="append one wide event per request as JSONL to FILE"
        " (same as REPRO_EVENTS; see docs/observability.md)",
    )
    parser.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="capture requests slower than MS into the slow-query log"
        " (same as REPRO_SLOW_MS; inspect via GET /debug/slow)",
    )
    parser.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-client token-bucket rate limit in requests/second;"
        " floods get 429 + Retry-After (same as REPRO_RATE_LIMIT;"
        " see docs/http_api.md)",
    )
    parser.add_argument(
        "--rate-burst", type=float, default=None, metavar="TOKENS",
        help="token-bucket burst ceiling (default: 2x the rate;"
        " same as REPRO_RATE_BURST)",
    )
    parser.add_argument(
        "--stream-threshold", type=int, default=None, metavar="ROWS",
        help="stream responses with at least ROWS rows in bounded chunks"
        " (default: REPRO_STREAM_THRESHOLD or 1000; ?stream=1|0"
        " overrides per request)",
    )
    args = parser.parse_args(argv)

    if args.trace:
        from repro.obs import get_tracer

        get_tracer().enable()

    if args.events_out:
        from repro.obs import WideEventLog, set_event_log

        set_event_log(WideEventLog(args.events_out))
    if args.slow_ms is not None:
        from repro.obs import SlowQueryLog, set_slow_log

        set_slow_log(SlowQueryLog(threshold_ms=args.slow_ms))

    genmapper = GenMapper(
        args.db,
        pool_size=args.pool_size,
        cache_size=args.cache_size,
        enable_cache=False if args.no_cache else None,
    )
    if args.demo:
        import tempfile

        from repro.datagen.emit import write_universe
        from repro.datagen.universe import UniverseConfig, generate_universe

        universe = generate_universe(UniverseConfig())
        with tempfile.TemporaryDirectory() as directory:
            write_universe(universe, directory)
            genmapper.integrate_directory(directory)
        print(f"demo universe loaded: {genmapper.stats()['objects']} objects")

    app = create_app(
        genmapper,
        request_timeout=args.request_timeout,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        stream_threshold=args.stream_threshold,
    )
    with make_threading_server(args.host, args.port, app) as server:
        print(f"GenMapper API on http://{args.host}:{args.port}/sources")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
