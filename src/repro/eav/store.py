"""An in-memory container for parsed EAV rows with indexed query helpers.

The Parse step produces an :class:`EavDataset` per source; the Import step
consumes it.  The dataset also answers the questions the importer asks:
which entities exist, which targets occur, and which rows belong to a given
target or entity.

Those questions used to be answered by scanning the full row list per
call, which made the Import step quadratic on structure-heavy sources
(every entity's partition check re-scanned every row).  The dataset now
maintains lazily built indexes — per-target row lists, per-entity row
lists, entity/target first-seen orderings and the partition-entity set —
built in one pass over the rows and invalidated by mutation, so every
importer lookup is O(1) amortized.  See ``docs/performance.md``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.eav.model import CONTAINS_TARGET, RESERVED_TARGETS, EavRow


class EavRowsView(Sequence):
    """A read-only, zero-copy view of a dataset's row list.

    Supports everything a list of rows supports for reading (iteration,
    indexing, slicing, ``len``, membership, equality against any sequence)
    but cannot be mutated — appends must go through the owning dataset so
    its indexes stay coherent.  The view is *live*: rows appended to the
    dataset afterwards are visible through it.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: list[EavRow]) -> None:
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[EavRow]:
        return iter(self._rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self._rows[index])
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EavRowsView):
            return self._rows == other._rows
        if isinstance(other, list):
            return self._rows == other
        if isinstance(other, tuple):
            return tuple(self._rows) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"EavRowsView({self._rows!r})"


class _DatasetIndex:
    """All per-dataset lookup structures, built in one pass."""

    __slots__ = (
        "by_target",
        "by_entity",
        "entity_order",
        "target_order",
        "partition_entities",
        "reduced_evidence_targets",
    )

    def __init__(self, rows: list[EavRow]) -> None:
        by_target: dict[str, list[EavRow]] = {}
        by_entity: dict[str, list[EavRow]] = {}
        # An entity whose rows are *all* CONTAINS rows names a partition
        # sub-source (e.g. GO.BiologicalProcess), not an object.
        all_contains: dict[str, bool] = {}
        reduced: set[str] = set()
        for row in rows:
            target_rows = by_target.get(row.target)
            if target_rows is None:
                target_rows = by_target[row.target] = []
            target_rows.append(row)
            entity_rows = by_entity.get(row.entity)
            if entity_rows is None:
                entity_rows = by_entity[row.entity] = []
                all_contains[row.entity] = True
            entity_rows.append(row)
            if row.target != CONTAINS_TARGET:
                all_contains[row.entity] = False
            if row.evidence < 1.0:
                reduced.add(row.target)
        self.by_target = {
            target: tuple(target_rows) for target, target_rows in by_target.items()
        }
        self.by_entity = {
            entity: tuple(entity_rows) for entity, entity_rows in by_entity.items()
        }
        self.entity_order = list(by_entity)
        self.target_order = list(by_target)
        self.partition_entities = frozenset(
            entity for entity, flag in all_contains.items() if flag
        )
        self.reduced_evidence_targets = frozenset(reduced)


class EavDataset:
    """Parsed annotations of one source in the uniform EAV format.

    Parameters
    ----------
    source_name:
        Name of the parsed source (the owner of the entities).
    rows:
        The parsed EAV rows.
    release:
        Optional release/audit label carried through to the Import step's
        source-level duplicate elimination.
    """

    def __init__(
        self,
        source_name: str,
        rows: Iterable[EavRow] = (),
        release: str | None = None,
    ) -> None:
        self.source_name = source_name
        self.release = release
        self._rows: list[EavRow] = list(rows)
        self._index: _DatasetIndex | None = None
        self._view: EavRowsView | None = None

    def append(self, row: EavRow) -> None:
        """Add one parsed annotation (invalidates the lookup indexes)."""
        self._rows.append(row)
        self._index = None

    def extend(self, rows: Iterable[EavRow]) -> None:
        """Add many parsed annotations (invalidates the lookup indexes)."""
        self._rows.extend(rows)
        self._index = None

    def _indexed(self) -> _DatasetIndex:
        """The lookup index, (re)built lazily after mutations."""
        if self._index is None:
            self._index = _DatasetIndex(self._rows)
        return self._index

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[EavRow]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EavDataset):
            return NotImplemented
        return (
            self.source_name == other.source_name
            and self.release == other.release
            and self._rows == other._rows
        )

    @property
    def rows(self) -> EavRowsView:
        """All rows in parse order, as a read-only zero-copy view."""
        if self._view is None:
            self._view = EavRowsView(self._rows)
        return self._view

    def entities(self) -> list[str]:
        """Distinct entity accessions in first-seen order."""
        return list(self._indexed().entity_order)

    def targets(self) -> list[str]:
        """Distinct target names in first-seen order, reserved ones included."""
        return list(self._indexed().target_order)

    def annotation_targets(self) -> list[str]:
        """Targets that become cross-source mappings on import."""
        return [t for t in self._indexed().target_order if t not in RESERVED_TARGETS]

    def rows_for_target(self, target: str) -> tuple[EavRow, ...]:
        """All rows annotating entities with the given target."""
        return self._indexed().by_target.get(target, ())

    def rows_for_entity(self, entity: str) -> tuple[EavRow, ...]:
        """All rows annotating one entity, in parse order."""
        return self._indexed().by_entity.get(entity, ())

    def partition_entities(self) -> frozenset[str]:
        """Entities that name CONTAINS partitions rather than objects.

        A CONTAINS row uses the partition name (e.g. ``GO.BiologicalProcess``)
        as its entity; an entity *all* of whose rows are CONTAINS rows is a
        partition sub-source, not an object of the parsed source.  Computed
        once in the index pass — the importer's per-entity scan used to make
        this check quadratic on structure-heavy sources.
        """
        return self._indexed().partition_entities

    def has_reduced_evidence(self, target: str) -> bool:
        """True when any row of this target carries evidence < 1.0."""
        return target in self._indexed().reduced_evidence_targets

    def target_counts(self) -> Counter[str]:
        """Number of rows per target — handy for parser diagnostics."""
        index = self._indexed()
        return Counter(
            {target: len(index.by_target[target]) for target in index.target_order}
        )

    def summary(self) -> str:
        """One-line description used by the CLI and logs."""
        return (
            f"EavDataset({self.source_name!r}, entities={len(self.entities())},"
            f" rows={len(self._rows)}, targets={len(self.targets())})"
        )
