"""An in-memory container for parsed EAV rows with simple query helpers.

The Parse step produces an :class:`EavDataset` per source; the Import step
consumes it.  The dataset also answers the questions the importer asks:
which entities exist, which targets occur, and which rows belong to a given
target.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from repro.eav.model import RESERVED_TARGETS, EavRow


class EavDataset:
    """Parsed annotations of one source in the uniform EAV format.

    Parameters
    ----------
    source_name:
        Name of the parsed source (the owner of the entities).
    rows:
        The parsed EAV rows.
    release:
        Optional release/audit label carried through to the Import step's
        source-level duplicate elimination.
    """

    def __init__(
        self,
        source_name: str,
        rows: Iterable[EavRow] = (),
        release: str | None = None,
    ) -> None:
        self.source_name = source_name
        self.release = release
        self._rows: list[EavRow] = list(rows)

    def append(self, row: EavRow) -> None:
        """Add one parsed annotation."""
        self._rows.append(row)

    def extend(self, rows: Iterable[EavRow]) -> None:
        """Add many parsed annotations."""
        self._rows.extend(rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[EavRow]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EavDataset):
            return NotImplemented
        return (
            self.source_name == other.source_name
            and self.release == other.release
            and self._rows == other._rows
        )

    @property
    def rows(self) -> list[EavRow]:
        """All rows in parse order."""
        return list(self._rows)

    def entities(self) -> list[str]:
        """Distinct entity accessions in first-seen order."""
        seen: dict[str, None] = {}
        for row in self._rows:
            seen.setdefault(row.entity, None)
        return list(seen)

    def targets(self) -> list[str]:
        """Distinct target names in first-seen order, reserved ones included."""
        seen: dict[str, None] = {}
        for row in self._rows:
            seen.setdefault(row.target, None)
        return list(seen)

    def annotation_targets(self) -> list[str]:
        """Targets that become cross-source mappings on import."""
        return [t for t in self.targets() if t not in RESERVED_TARGETS]

    def rows_for_target(self, target: str) -> list[EavRow]:
        """All rows annotating entities with the given target."""
        return [row for row in self._rows if row.target == target]

    def rows_for_entity(self, entity: str) -> list[EavRow]:
        """All rows annotating one entity, in parse order."""
        return [row for row in self._rows if row.entity == entity]

    def target_counts(self) -> Counter[str]:
        """Number of rows per target — handy for parser diagnostics."""
        return Counter(row.target for row in self._rows)

    def summary(self) -> str:
        """One-line description used by the CLI and logs."""
        return (
            f"EavDataset({self.source_name!r}, entities={len(self.entities())},"
            f" rows={len(self._rows)}, targets={len(self.targets())})"
        )
