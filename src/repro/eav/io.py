"""Reading and writing EAV datasets as tab-separated files.

The paper stores the Parse step's output "in a simple EAV format"; writing
it to disk decouples parsing from importing and lets the import step be
re-run without re-parsing.  The file format is a TSV with a two-line
header::

    #eav source=LocusLink release=2003-10
    #entity	target	accession	text	number	evidence
    353	Hugo	APRT	adenine phosphoribosyltransferase		1.0
"""

from __future__ import annotations

from pathlib import Path

from repro.eav.model import EavRow
from repro.eav.store import EavDataset
from repro.gam.errors import ParseError

_HEADER_PREFIX = "#eav"
_COLUMNS = "#entity\ttarget\taccession\ttext\tnumber\tevidence"


def write_eav(dataset: EavDataset, path: str | Path) -> None:
    """Write a dataset to a TSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = f"{_HEADER_PREFIX} source={dataset.source_name}"
    if dataset.release:
        header += f" release={dataset.release}"
    with path.open("w", encoding="utf-8") as handle:
        handle.write(header + "\n")
        handle.write(_COLUMNS + "\n")
        for row in dataset:
            handle.write("\t".join(row.as_tuple()) + "\n")


def read_eav(path: str | Path) -> EavDataset:
    """Read a dataset from a TSV file written by :func:`write_eav`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_HEADER_PREFIX):
            raise ParseError(
                f"{path}: not an EAV file (missing {_HEADER_PREFIX!r} header)",
                line_number=1,
            )
        attributes = _parse_header(header)
        source_name = attributes.get("source")
        if not source_name:
            raise ParseError(f"{path}: EAV header lacks a source name", line_number=1)
        dataset = EavDataset(source_name, release=attributes.get("release"))
        for line_number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            fields = tuple(line.split("\t"))
            if len(fields) < 3:
                raise ParseError(
                    f"{path}: EAV row needs at least 3 columns, got {len(fields)}",
                    line_number=line_number,
                )
            try:
                dataset.append(EavRow.from_tuple(fields))
            except ValueError as exc:
                raise ParseError(
                    f"{path}: bad numeric field ({exc})", line_number=line_number
                ) from exc
    return dataset


def _parse_header(header: str) -> dict[str, str]:
    """Extract key=value attributes from the ``#eav`` header line."""
    attributes: dict[str, str] = {}
    for token in header.split()[1:]:
        key, sep, value = token.partition("=")
        if sep:
            attributes[key] = value
    return attributes
