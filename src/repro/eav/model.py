"""The EAV staging format produced by the Parse step (paper Table 1).

Every parser emits a uniform stream of :class:`EavRow` records, one per
annotation, mirroring the paper's example::

    Locus  Target    Accession    Text
    353    Hugo      APRT         adenine phosphoribosyltransferase
    353    Location  16q24
    353    Enzyme    2.4.2.7
    353    GO        GO:0009116   nucleoside metabolism

``entity`` is the accession of the annotated object in the source being
parsed, ``target`` names the annotating source (attribute), ``accession``
is the value's accession in the target, and ``text`` optionally carries the
value's textual component.  ``evidence`` extends the paper's format with the
plausibility that OBJECT_REL stores for computed associations.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True, slots=True)
class EavRow:
    """One parsed annotation: (entity, target/attribute, value)."""

    entity: str
    target: str
    accession: str
    text: str | None = None
    number: float | None = None
    evidence: float = 1.0

    def as_tuple(self) -> tuple[str, str, str, str, str, str]:
        """Flatten to the 6-column TSV representation."""
        return (
            self.entity,
            self.target,
            self.accession,
            self.text if self.text is not None else "",
            "" if self.number is None else repr(self.number),
            repr(self.evidence),
        )

    @classmethod
    def from_tuple(cls, fields: tuple[str, ...]) -> "EavRow":
        """Rebuild a row from its TSV representation (4 to 6 columns)."""
        entity, target, accession = fields[0], fields[1], fields[2]
        text = fields[3] if len(fields) > 3 and fields[3] != "" else None
        number = (
            float(fields[4]) if len(fields) > 4 and fields[4] != "" else None
        )
        evidence = float(fields[5]) if len(fields) > 5 and fields[5] != "" else 1.0
        return cls(entity, target, accession, text, number, evidence)


#: Reserved target names understood by the Import step as special attributes
#: of the entity itself rather than cross-references to another source.
NAME_TARGET = "Name"
NUMBER_TARGET = "Number"

#: Reserved target names mapped to structural relationships instead of
#: annotation mappings: ``IS_A`` links a term to its parent term within the
#: same source; ``CONTAINS`` links a sub-source partition to its member.
IS_A_TARGET = "IS_A"
CONTAINS_TARGET = "CONTAINS"

RESERVED_TARGETS = frozenset(
    {NAME_TARGET, NUMBER_TARGET, IS_A_TARGET, CONTAINS_TARGET}
)
