"""EAV — the uniform staging format emitted by the Parse step (Table 1)."""

from repro.eav.io import read_eav, write_eav
from repro.eav.model import (
    CONTAINS_TARGET,
    IS_A_TARGET,
    NAME_TARGET,
    NUMBER_TARGET,
    RESERVED_TARGETS,
    EavRow,
)
from repro.eav.store import EavDataset

__all__ = [
    "CONTAINS_TARGET",
    "EavDataset",
    "EavRow",
    "IS_A_TARGET",
    "NAME_TARGET",
    "NUMBER_TARGET",
    "RESERVED_TARGETS",
    "read_eav",
    "write_eav",
]
