"""The ``GenMapper`` facade — the system's public API.

One object wires together the pieces the paper describes (Figure 2): the
central GAM database, the Parse/Import pipeline, the high-level operators,
derived-relationship materialization and the source-graph path finder.

Typical use::

    gm = GenMapper()                      # in-memory database
    gm.integrate_file("locuslink.txt", source_name="LocusLink")
    gm.integrate_file("go.obo", source_name="GO")
    view = gm.generate_view(
        "LocusLink",
        targets=["Hugo", "GO", "Location"],
        combine="OR",
    )
    print(view.render())
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

import networkx as nx

from repro.cache import (
    DEFAULT_MAX_BYTES,
    MappingCache,
    cache_enabled_by_env,
    cache_size_from_env,
    spec_digest,
)
from repro.derived.composed import derive_composed, materialize_mapping
from repro.derived.refresh import (
    RefreshReport,
    refresh_composed,
    refresh_subsumed,
)
from repro.derived.subsumed import derive_subsumed, load_taxonomy, subsumed_mapping
from repro.eav.store import EavDataset
from repro.gam.database import GamDatabase
from repro.gam.enums import CombineMethod, RelType
from repro.gam.errors import UnknownMappingError
from repro.gam.integrity import IntegrityReport, check
from repro.gam.records import Association, GamObject, Source
from repro.gam.repository import GamRepository
from repro.importer.importer import ImportReport
from repro.importer.pipeline import IntegrationPipeline
from repro.obs import annotate_event, event_scope, get_tracer
from repro.operators.compose import EvidenceCombiner, compose, product_evidence
from repro.operators.generate_view import TargetSpec, generate_view
from repro.operators.mapping import Mapping
from repro.operators.simple import map_
from repro.operators.views import AnnotationView
from repro.parsers.base import SourceParser
from repro.pathfinder.graph import build_source_graph, connectivity_summary
from repro.pathfinder.saved import PathRegistry
from repro.pathfinder.search import (
    MappingPath,
    k_shortest_paths,
    shortest_path,
    shortest_path_via,
    validate_path,
)
from repro.reliability.breaker import CircuitBreaker, mark_degraded
from repro.reliability.retry import is_retryable
from repro.taxonomy.dag import Taxonomy

#: Accepted target argument forms for :meth:`GenMapper.generate_view`.
TargetLike = "str | TargetSpec | tuple"


def _combiner_label(combiner: EvidenceCombiner) -> str | None:
    """Cache-key label of a combiner; None for ad-hoc callables (their
    results are never cached because the callable has no stable identity)."""
    if combiner is product_evidence:
        return "product"
    from repro.operators.compose import min_evidence

    if combiner is min_evidence:
        return "min"
    return None


class GenMapper:
    """Flexible integration of annotation data over one GAM database.

    Parameters
    ----------
    path, pool_size:
        Database location and connection-pool bound (``docs/storage.md``).
    cache_size:
        Maximum entries in the mapping cache; ``0`` disables caching and
        ``None`` uses ``REPRO_CACHE_SIZE`` or the default.  See
        ``docs/performance.md``.
    enable_cache:
        Force the cache on/off; ``None`` (default) honours the
        ``REPRO_CACHE`` environment variable (on unless set to ``off``).
    breaker:
        Circuit breaker guarding the query-serving paths (see
        ``docs/reliability.md``); ``None`` (default) installs one with
        stock thresholds.  Set ``gm.breaker = None`` to disable.
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        pool_size: int | None = None,
        cache_size: int | None = None,
        enable_cache: bool | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        # open() auto-detects the storage layout (monolithic vs sharded)
        # of an existing database and honours REPRO_SHARDS for new ones.
        self.db = GamDatabase.open(path, pool_size=pool_size)
        self.repository = GamRepository(self.db)
        self.pipeline = IntegrationPipeline(self.repository)
        self.paths = PathRegistry(self.db)
        self._graph: nx.MultiGraph | None = None
        self.breaker: CircuitBreaker | None = (
            breaker if breaker is not None else CircuitBreaker(name="repository")
        )
        if enable_cache is None:
            enable_cache = cache_enabled_by_env(True)
        if cache_size is None:
            cache_size = cache_size_from_env()
        if enable_cache and cache_size > 0:
            self.cache: MappingCache | None = MappingCache(
                self.db, max_entries=cache_size, max_bytes=DEFAULT_MAX_BYTES
            )
        else:
            self.cache = None

    def close(self) -> None:
        """Close the underlying database connection."""
        self.db.close()

    def __enter__(self) -> "GenMapper":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- data import (Figure 2, left) ------------------------------------------

    def integrate_file(
        self,
        path: str | Path,
        source_name: str | None = None,
        release: str | None = None,
        parser: SourceParser | None = None,
    ) -> ImportReport:
        """Parse and import one native source file."""
        report = self.pipeline.integrate_file(
            path, source_name=source_name, release=release, parser=parser
        )
        self._invalidate_graph()
        return report

    def integrate_text(
        self,
        text: str,
        source_name: str,
        release: str | None = None,
        parser: SourceParser | None = None,
    ) -> ImportReport:
        """Parse and import source data given as a string."""
        if parser is None:
            from repro.parsers.base import get_parser

            parser = get_parser(source_name)
        dataset = parser.parse_text(text, release=release)
        report = self.pipeline.integrate_dataset(dataset, parser=parser)
        self._invalidate_graph()
        return report

    def integrate_dataset(
        self, dataset: EavDataset, parser: SourceParser | None = None
    ) -> ImportReport:
        """Import an already-parsed EAV dataset."""
        report = self.pipeline.integrate_dataset(dataset, parser=parser)
        self._invalidate_graph()
        return report

    def integrate_directory(
        self,
        directory: str | Path,
        workers: int | None = None,
        resume: bool | None = None,
    ) -> list[ImportReport]:
        """Import every source listed in a directory's manifest.

        ``workers`` > 1 integrates sources concurrently over the
        connection pool; ``resume=True`` skips sources already
        checkpointed from an earlier (possibly killed) run (see
        :meth:`repro.importer.pipeline.IntegrationPipeline.integrate_directory`).
        """
        reports = self.pipeline.integrate_directory(
            directory, workers=workers, resume=resume
        )
        self._invalidate_graph()
        return reports

    # -- sources and objects -----------------------------------------------------

    def sources(self) -> list[Source]:
        """All integrated sources."""
        return self.repository.list_sources()

    def source(self, name: str) -> Source:
        """One source by name; raises if unknown."""
        return self.repository.get_source(name)

    def objects(self, source: str, limit: int | None = None) -> list[GamObject]:
        """Objects of a source."""
        return self.repository.objects_of(source, limit=limit)

    def accessions(self, source: str) -> set[str]:
        """Accession set of a source."""
        return self.repository.accessions_of(source)

    def object_info(
        self, source: str, accession: str
    ) -> list[tuple[str, RelType, Association]]:
        """Everything known about one object (Figure 1 / Figure 6c)."""
        return self.repository.annotations_of_object(source, accession)

    # -- resilience (docs/reliability.md) ----------------------------------------

    def _resilient(self, fetch, key=None, stale_wrap=None):
        """Run one query-serving fetch under the circuit breaker.

        When the circuit is open, or the fetch fails with a transient
        storage error, a resident (possibly stale) cache entry for
        ``key`` is served instead and the response is flagged degraded
        (:func:`repro.reliability.breaker.mark_degraded`).  Without a
        fallback the breaker's :class:`CircuitOpenError` (open circuit)
        or the storage error itself propagates.  ``stale_wrap`` adapts a
        bare stale value to the fetch's return shape (``cache.lookup``
        returns ``(value, was_hit)`` tuples).
        """
        breaker = self.breaker
        if breaker is None:
            return fetch()

        def stale_or_none(reason: str):
            if key is None or self.cache is None:
                return None
            value, found = self.cache.get_stale(key)
            if not found:
                return None
            mark_degraded(reason)
            return (value if stale_wrap is None else stale_wrap(value))

        if not breaker.allow():
            served = stale_or_none(f"circuit open: stale {key[0] if key else '?'}")
            if served is not None:
                return served
            raise breaker.open_error()
        try:
            value = fetch()
        except Exception as exc:
            if is_retryable(exc):
                breaker.record_failure()
                served = stale_or_none(f"storage failure: stale {key[0] if key else '?'}")
                if served is not None:
                    return served
            raise
        breaker.record_success()
        return value

    # -- operators (Section 4.2) ---------------------------------------------------

    def map(
        self,
        source: str,
        target: str,
        via: Sequence[str] | None = None,
        combiner: EvidenceCombiner = product_evidence,
    ) -> Mapping:
        """``Map`` with automatic ``Compose`` fallback.

        Tries the stored mapping first; when none exists, finds the
        shortest mapping path in the source graph (optionally through the
        explicit ``via`` intermediates) and composes along it.  Results
        are served from the generation-aware mapping cache when one is
        enabled (``docs/performance.md``); any write to the database
        invalidates them transparently.
        """
        label = _combiner_label(combiner)
        if self.cache is None or label is None:
            return self._resilient(
                lambda: self._map_uncached(source, target, via, combiner)
            )
        if via:
            key = MappingCache.composed_key([source, *via, target], label)
        else:
            key = MappingCache.mapping_key(source, target, f"auto#{label}")
        return self._resilient(
            lambda: self.cache.get_or_load(
                key, lambda: self._map_uncached(source, target, via, combiner)
            ),
            key,
        )

    def _map_uncached(
        self,
        source: str,
        target: str,
        via: Sequence[str] | None,
        combiner: EvidenceCombiner,
    ) -> Mapping:
        if via:
            return compose(self.repository, [source, *via, target], combiner)
        try:
            return map_(self.repository, source, target)
        except UnknownMappingError:
            path = self.find_path(source, target)
            return compose(self.repository, path, combiner)

    def compose(
        self,
        path: Sequence[str],
        combiner: EvidenceCombiner = product_evidence,
        materialize: bool = False,
        engine: str = "auto",
    ) -> Mapping:
        """``Compose`` along an explicit mapping path.

        Non-materializing composes with a named combiner are cached by
        path; ``materialize=True`` always executes (it must write) and its
        write invalidates cached results for the path's endpoint sources
        (scoped by the generation vector).  ``engine`` selects the
        execution strategy (``auto``/``sql``/``memory``, see
        :func:`repro.derived.composed.derive_composed`).
        """
        label = _combiner_label(combiner)
        if self.cache is not None and label is not None and not materialize:
            key = MappingCache.composed_key(path, label)
            return self._resilient(
                lambda: self.cache.get_or_load(
                    key,
                    lambda: derive_composed(
                        self.repository,
                        path,
                        combiner,
                        materialize=False,
                        engine=engine,
                    ),
                ),
                key,
            )
        mapping = derive_composed(
            self.repository, path, combiner, materialize=materialize, engine=engine
        )
        if materialize:
            self._invalidate_graph()
        return mapping

    def generate_view(
        self,
        source: str,
        targets: Sequence[TargetLike],
        source_objects: Iterable[str] | None = None,
        combine: CombineMethod | str = CombineMethod.OR,
        combiner: EvidenceCombiner = product_evidence,
        engine: str = "memory",
    ) -> AnnotationView:
        """``GenerateView`` (Figure 5) with automatic mapping resolution.

        ``targets`` entries may be target names, ``(name, restrict_set)``
        tuples, ``(name, restrict_set, negated)`` tuples or full
        :class:`TargetSpec` objects.  ``source_objects=None`` covers the
        entire source, matching the interactive interface's default.

        ``engine`` picks the execution strategy: ``"memory"`` (default)
        joins loaded mappings in Python; ``"sql"`` compiles the whole view
        — including Compose paths and negation — into one SQL statement
        (see :mod:`repro.operators.sql_engine`).  Results are identical;
        the SQL engine ignores ``combiner`` since views carry no evidence.
        """
        specs = [self._as_spec(target) for target in targets]
        if engine not in ("memory", "sql"):
            raise ValueError(f"unknown view engine {engine!r}")
        if source_objects is not None:
            # Normalize once: the accession set keys the cache *and* feeds
            # the loader, so a one-shot iterator must not be consumed twice.
            source_objects = tuple(source_objects)
        label = _combiner_label(combiner)
        key = (
            self.view_cache_key(source, specs, source_objects, combine, engine, label)
            if self.cache is not None and (label is not None or engine == "sql")
            else None
        )
        if key is None:
            return self._resilient(
                lambda: self._generate_view_uncached(
                    source, specs, source_objects, combine, combiner, engine
                )
            )
        view, was_hit = self._resilient(
            lambda: self.cache.lookup(
                key,
                lambda: self._generate_view_uncached(
                    source, specs, source_objects, combine, combiner, engine
                ),
            ),
            key,
            # A stale view served in degraded mode counts as a hit.
            stale_wrap=lambda value: (value, True),
        )
        span = get_tracer().current_span()
        if span is not None:
            span.tag(view_cached=was_hit)
        return view

    def _generate_view_uncached(
        self,
        source: str,
        specs: Sequence[TargetSpec],
        source_objects: Iterable[str] | None,
        combine: CombineMethod | str,
        combiner: EvidenceCombiner,
        engine: str,
    ) -> AnnotationView:
        if engine == "sql":
            from repro.operators.sql_engine import SqlViewEngine

            return SqlViewEngine(self.repository).generate_view(
                source, source_objects, specs, combine
            )
        if source_objects is None:
            source_objects = self.repository.accessions_of(source)

        def resolver(view_source: str, spec: TargetSpec) -> Mapping:
            return self.map(view_source, spec.name, via=spec.via or None, combiner=combiner)

        return generate_view(resolver, source, source_objects, specs, combine)

    @staticmethod
    def view_cache_key(
        source: str,
        specs: Sequence[TargetSpec],
        source_objects: Iterable[str] | None,
        combine: CombineMethod | str,
        engine: str,
        combiner_label: str | None,
    ) -> tuple:
        """The cache key of one rendered annotation view.

        Deterministic over the full query shape: target specs (restrict
        sets and via paths sorted/ordered), the uploaded accession set,
        the combine method, the engine and the evidence combiner.
        """
        spec_parts = tuple(
            (
                spec.name,
                None if spec.restrict is None else tuple(sorted(spec.restrict)),
                spec.negated,
                tuple(spec.via),
            )
            for spec in specs
        )
        objects_part = (
            None if source_objects is None else tuple(sorted(source_objects))
        )
        variant = spec_digest(
            spec_parts,
            objects_part,
            CombineMethod.parse(combine).value,
            engine,
            combiner_label or "",
        )
        return MappingCache.view_key(source, variant)

    @staticmethod
    def _as_spec(target: TargetLike) -> TargetSpec:
        if isinstance(target, TargetSpec):
            return target
        if isinstance(target, str):
            return TargetSpec.of(target)
        if isinstance(target, tuple):
            name = target[0]
            restrict = target[1] if len(target) > 1 else None
            negated = bool(target[2]) if len(target) > 2 else False
            return TargetSpec.of(name, restrict=restrict, negated=negated)
        raise TypeError(f"not a view target: {target!r}")

    # -- derived relationships -------------------------------------------------------

    def derive_subsumed(self, source: str, engine: str = "auto") -> int:
        """Materialize the Subsumed mapping of a taxonomy source."""
        with event_scope("derivation", operation="derive_subsumed", source=source):
            __, inserted = derive_subsumed(self.repository, source, engine=engine)
            annotate_event(rows=inserted)
        self._invalidate_graph()
        return inserted

    def refresh_composed(
        self,
        path: Sequence[str],
        combiner: EvidenceCombiner = product_evidence,
        watermark: "int | dict[str, int]" = 0,
        engine: str = "auto",
    ) -> RefreshReport:
        """Incrementally maintain a materialized Composed mapping.

        Applies only the base rows imported since ``watermark`` (a max
        ``obj_rel_id``, or the watermarks dict the import journal records
        per source file) instead of re-deriving the whole mapping — see
        :mod:`repro.derived.refresh`.
        """
        with event_scope(
            "derivation",
            operation="refresh_composed",
            path=" -> ".join(str(step) for step in path),
        ):
            report = refresh_composed(
                self.repository, path, combiner, watermark=watermark, engine=engine
            )
            annotate_event(rows=report.changed, delta_edges=report.delta_edges)
        self._invalidate_graph()
        return report

    def refresh_subsumed(
        self,
        source: str,
        watermark: "int | dict[str, int]" = 0,
        engine: str = "auto",
    ) -> RefreshReport:
        """Incrementally maintain a materialized Subsumed mapping from
        the IS_A edges imported since ``watermark``."""
        with event_scope(
            "derivation", operation="refresh_subsumed", source=source
        ):
            report = refresh_subsumed(
                self.repository, source, watermark=watermark, engine=engine
            )
            annotate_event(rows=report.changed, delta_edges=report.delta_edges)
        self._invalidate_graph()
        return report

    def subsumed(self, source: str) -> Mapping:
        """The term → subsumed-term mapping, computed on the fly.

        Built over the cached taxonomy DAG and itself cached: the
        transitive closure is expensive on deep GO chains, and the result
        only changes when the IS_A structure does (generation bump).
        """
        if self.cache is None:
            return self._resilient(
                lambda: subsumed_mapping(self.repository, source)
            )
        src = self.repository.get_source(source)

        def load() -> Mapping:
            return Mapping.build(
                src.name,
                src.name,
                self.taxonomy(src.name).subsumed_pairs(),
                rel_type=RelType.SUBSUMED,
            )

        key = MappingCache.mapping_key(src.name, src.name, "subsumed")
        return self._resilient(
            lambda: self.cache.get_or_load(key, load), key
        )

    def taxonomy(self, source: str) -> Taxonomy:
        """The IS_A taxonomy of a Network source (cached when enabled)."""
        if self.cache is None:
            return self._resilient(
                lambda: load_taxonomy(self.repository, source)
            )
        src = self.repository.get_source(source)
        key = MappingCache.taxonomy_key(src.name)
        return self._resilient(
            lambda: self.cache.get_or_load(
                key, lambda: load_taxonomy(self.repository, src)
            ),
            key,
        )

    def materialize(self, mapping: Mapping) -> int:
        """Store an in-memory mapping as a Composed relationship."""
        with event_scope(
            "derivation",
            operation="materialize",
            source=mapping.source,
            target=mapping.target,
        ):
            __, inserted = materialize_mapping(self.repository, mapping)
            annotate_event(rows=inserted)
        self._invalidate_graph()
        return inserted

    # -- source graph / paths (Section 5.1) ----------------------------------------------

    def source_graph(self) -> nx.MultiGraph:
        """The graph of all sources and mappings (cached until changed)."""
        if self._graph is None:
            self._graph = build_source_graph(self.repository)
        return self._graph

    def _invalidate_graph(self) -> None:
        self._graph = None

    def find_path(
        self, source: str, target: str, via: str | None = None
    ) -> MappingPath:
        """Shortest mapping path, optionally through an intermediate."""
        graph = self.source_graph()
        if via is None:
            return shortest_path(graph, source, target)
        return shortest_path_via(graph, source, target, via)

    def find_paths(self, source: str, target: str, k: int = 5) -> list[MappingPath]:
        """Up to ``k`` alternative mapping paths, cheapest first."""
        return k_shortest_paths(self.source_graph(), source, target, k)

    def save_path(self, name: str, path: Sequence[str]) -> None:
        """Validate and persist a manually built path."""
        validated = validate_path(self.source_graph(), path)
        self.paths.save(name, validated)

    def load_path(self, name: str) -> MappingPath:
        """Load a previously saved path."""
        return self.paths.load(name)

    # -- curation / maintenance ------------------------------------------------------------

    def match(
        self,
        source: str,
        target: str,
        threshold: float = 0.8,
        top_k: int = 1,
        materialize: bool = False,
    ) -> Mapping:
        """Compute a Similarity mapping by attribute (name) matching.

        Section 3's "attribute matching algorithm", exposed on the facade.
        """
        from repro.derived.composed import materialize_mapping
        from repro.operators.matching import MatchConfig, match_attributes

        config = MatchConfig(threshold=threshold, top_k=top_k)
        mapping = match_attributes(self.repository, source, target, config)
        if materialize and not mapping.is_empty():
            materialize_mapping(self.repository, mapping, RelType.SIMILARITY)
            self._invalidate_graph()
        return mapping

    def diff_release(self, dataset: EavDataset):
        """Diff a parsed release against the store (curator review)."""
        from repro.importer.diff import diff_against_store

        return diff_against_store(self.repository, dataset)

    def delete_source(self, source: str, prune: bool = False):
        """Cascade-remove a source; optionally prune stranded objects."""
        from repro.gam.maintenance import delete_source, prune_orphan_objects

        report = delete_source(self.repository, source)
        if prune:
            prune_orphan_objects(self.repository)
        self._invalidate_graph()
        return report

    def coverage(self, source: str):
        """Annotation coverage of one source's outgoing mappings."""
        from repro.analysis.coverage import source_coverage

        return source_coverage(self.repository, source)

    def statistics(self):
        """The detailed deployment report (Section 5 census)."""
        from repro.gam.statistics import collect_statistics

        return collect_statistics(self.repository)

    # -- statistics / health --------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Deployment statistics in the shape of paper Section 5."""
        counts = self.db.counts()
        graph_stats = connectivity_summary(self.source_graph())
        return {
            "sources": counts["source"],
            "objects": counts["object"],
            "mappings": counts["source_rel"],
            "associations": counts["object_rel"],
            **{f"graph_{key}": value for key, value in graph_stats.items()},
        }

    def check_integrity(self) -> IntegrityReport:
        """Run the cross-table integrity checks."""
        return check(self.db)

    # -- cache -----------------------------------------------------------------

    def cache_stats(self) -> dict | None:
        """The mapping cache's stats block, or None when caching is off."""
        return None if self.cache is None else self.cache.stats()

    def clear_cache(self) -> int:
        """Drop every cached value (normally unnecessary: writes bump the
        data generation and invalidate entries implicitly)."""
        return 0 if self.cache is None else self.cache.invalidate_all()
