"""The GenMapper core: the facade over GAM, import, operators and paths."""

from repro.core.genmapper import GenMapper

__all__ = ["GenMapper"]
