"""A small textual query language over annotation views.

The paper motivates queries of the form "Given a set of LocusLink genes,
identify those that are located at some given cytogenetic positions, and
annotated with some given GO functions, but not associated with some given
OMIM diseases".  This module gives that sentence a machine-readable form::

    ANNOTATE LocusLink OBJECTS 353, 354
    WITH Location IN (16q24)
    AND GO IN (GO:0009116)
    AND NOT OMIM IN (102600)

Grammar (case-insensitive keywords)::

    query      := "ANNOTATE" source ["OBJECTS" list] "WITH" clause
                  (connector clause)*
    clause     := ["NOT"] target ["IN" "(" list ")"] ["VIA" path]
    connector  := "AND" | "OR"          (must be consistent within a query)
    path       := source ("->" source)*
    list       := item ("," item)*

``AND`` and ``OR`` map to the GenerateView combine method; mixing them in
one query is rejected, as the operator combines all targets one way.
"""

from __future__ import annotations

import re

from repro.gam.enums import CombineMethod
from repro.gam.errors import QuerySpecError
from repro.query.spec import QuerySpec, QueryTarget

_TOKEN_RE = re.compile(
    r"""
    (?P<lparen>\() | (?P<rparen>\)) | (?P<comma>,) | (?P<arrow>->)
    | (?P<word>[^\s(),]+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"ANNOTATE", "OBJECTS", "WITH", "AND", "OR", "NOT", "IN", "VIA"}


def _tokenize(text: str) -> list[str]:
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        token = match.group(0)
        tokens.append(token)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        if self.position >= len(self.tokens):
            return None
        return self.tokens[self.position]

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QuerySpecError("unexpected end of query")
        self.position += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.upper() != keyword:
            raise QuerySpecError(f"expected {keyword}, got {token!r}")

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token is not None and token.upper() in keywords

    def parse(self) -> QuerySpec:
        self.expect_keyword("ANNOTATE")
        source = self._name()
        accessions = None
        if self.at_keyword("OBJECTS"):
            self.next()
            accessions = self._bare_list(stop_keywords={"WITH"})
        self.expect_keyword("WITH")
        targets = [self._clause()]
        combine: CombineMethod | None = None
        while self.at_keyword("AND", "OR"):
            connector = CombineMethod.parse(self.next())
            if combine is None:
                combine = connector
            elif combine != connector:
                raise QuerySpecError(
                    "cannot mix AND and OR in one query; GenerateView"
                    " combines all targets one way"
                )
            targets.append(self._clause())
        if self.peek() is not None:
            raise QuerySpecError(f"trailing tokens after query: {self.peek()!r}")
        return QuerySpec(
            source=source,
            accessions=None if accessions is None else frozenset(accessions),
            targets=tuple(targets),
            combine=combine or CombineMethod.AND,
        )

    def _name(self) -> str:
        token = self.next()
        if token.upper() in _KEYWORDS or token in "(),":
            raise QuerySpecError(f"expected a name, got {token!r}")
        return token

    def _clause(self) -> QueryTarget:
        negated = False
        if self.at_keyword("NOT"):
            self.next()
            negated = True
        name = self._name()
        accessions = None
        if self.at_keyword("IN"):
            self.next()
            accessions = frozenset(self._paren_list())
        via: tuple[str, ...] = ()
        if self.at_keyword("VIA"):
            self.next()
            via = tuple(self._path())
        return QueryTarget(
            name=name, accessions=accessions, negated=negated, via=via
        )

    def _paren_list(self) -> list[str]:
        if self.next() != "(":
            raise QuerySpecError("expected '(' after IN")
        items = []
        while True:
            token = self.next()
            if token == ")":
                break
            if token == ",":
                continue
            items.append(token)
        if not items:
            raise QuerySpecError("empty IN (...) list")
        return items

    def _bare_list(self, stop_keywords: set[str]) -> list[str]:
        items = []
        while True:
            token = self.peek()
            if token is None or token.upper() in stop_keywords:
                break
            self.next()
            if token == ",":
                continue
            items.append(token)
        if not items:
            raise QuerySpecError("OBJECTS needs at least one accession")
        return items

    def _path(self) -> list[str]:
        sources = [self._name()]
        while self.peek() == "->":
            self.next()
            sources.append(self._name())
        return sources


def parse_query(text: str) -> QuerySpec:
    """Parse a query string into a :class:`QuerySpec`."""
    tokens = _tokenize(text)
    if not tokens:
        raise QuerySpecError("empty query")
    return _Parser(tokens).parse()
