"""Interactive query layer (paper Section 5.1, Figure 6)."""

from repro.query.batch import (
    BatchEntry,
    BatchResult,
    parse_batch,
    read_batch,
    render_results,
    run_batch,
)
from repro.query.language import parse_query
from repro.query.plan import QueryPlan, TargetPlan, plan_query
from repro.query.session import QuerySession, run_query
from repro.query.spec import QuerySpec, QueryTarget

__all__ = [
    "BatchEntry",
    "BatchResult",
    "QueryPlan",
    "parse_batch",
    "read_batch",
    "render_results",
    "run_batch",
    "QuerySession",
    "TargetPlan",
    "plan_query",
    "QuerySpec",
    "QueryTarget",
    "parse_query",
    "run_query",
]
