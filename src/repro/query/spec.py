"""User-facing query specifications (the Figure 6a form, as data).

A :class:`QuerySpec` captures everything the interactive interface collects
before running ``GenerateView``: the source, the uploaded accessions (or
the whole source), the targets with their accession restrictions, negation
flags and optional custom mapping paths, and the combine method.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from repro.gam.enums import CombineMethod
from repro.gam.errors import QuerySpecError
from repro.operators.generate_view import TargetSpec


@dataclasses.dataclass(frozen=True)
class QueryTarget:
    """One requested annotation target."""

    name: str
    #: Relevant target accessions; None covers the whole target source.
    accessions: frozenset[str] | None = None
    negated: bool = False
    #: Intermediate sources of a custom mapping path (excluding endpoints).
    via: tuple[str, ...] = ()

    def to_target_spec(self) -> TargetSpec:
        """Convert to the operator-level specification."""
        return TargetSpec(
            name=self.name,
            restrict=self.accessions,
            negated=self.negated,
            via=self.via,
        )


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """A complete annotation query."""

    source: str
    #: Uploaded object accessions; None means the entire source.
    accessions: frozenset[str] | None
    targets: tuple[QueryTarget, ...]
    combine: CombineMethod = CombineMethod.AND

    def __post_init__(self) -> None:
        if not self.source:
            raise QuerySpecError("a query needs a source")
        if not self.targets:
            raise QuerySpecError("a query needs at least one target")
        names = [target.name for target in self.targets]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise QuerySpecError(
                f"duplicate targets in query: {sorted(duplicates)}"
            )
        if self.source in names:
            raise QuerySpecError(
                f"source {self.source!r} cannot also be a target"
            )

    @classmethod
    def build(
        cls,
        source: str,
        targets: Iterable["QueryTarget | str"],
        accessions: Iterable[str] | None = None,
        combine: CombineMethod | str = CombineMethod.AND,
    ) -> "QuerySpec":
        """Convenience constructor accepting plain target names."""
        normalized = tuple(
            target if isinstance(target, QueryTarget) else QueryTarget(target)
            for target in targets
        )
        return cls(
            source=source,
            accessions=None if accessions is None else frozenset(accessions),
            targets=normalized,
            combine=CombineMethod.parse(combine),
        )

    def describe(self) -> str:
        """A readable one-line rendering (used by the CLI)."""
        parts = []
        for target in self.targets:
            text = target.name
            if target.negated:
                text = f"NOT {text}"
            if target.accessions is not None:
                text += f" IN ({', '.join(sorted(target.accessions))})"
            if target.via:
                text += f" VIA {' -> '.join(target.via)}"
            parts.append(text)
        connector = f" {self.combine.value} "
        scope = (
            "all objects"
            if self.accessions is None
            else f"{len(self.accessions)} objects"
        )
        return f"ANNOTATE {self.source} [{scope}] WITH {connector.join(parts)}"
