"""Query planning: how a specification will execute, before it does.

The interactive interface lets users inspect and override the mapping
paths GenMapper chose (Section 5.1).  ``plan_query`` performs exactly the
mapping resolution ``GenerateView`` would — stored mapping, explicit
``via`` path, or shortest-path composition — without loading associations,
and reports per-target: the resolution kind, the path, and a size estimate
from the stored association counts.  The CLI surfaces this as ``explain``.
"""

from __future__ import annotations

import dataclasses

from repro.core.genmapper import GenMapper
from repro.gam.errors import PathNotFoundError
from repro.pathfinder.search import shortest_path
from repro.query.spec import QuerySpec


@dataclasses.dataclass(frozen=True)
class TargetPlan:
    """How one target's mapping will be obtained."""

    target: str
    #: "stored", "composed" or "unreachable".
    kind: str
    #: The mapping path, source first, target last (empty if unreachable).
    path: tuple[str, ...]
    #: Size estimate: the smallest stored association count along the
    #: path (the join cannot match more chains than its thinnest leg
    #: offers, though fan-out can multiply endpoint pairs).
    estimated_associations: int
    negated: bool = False

    def describe(self) -> str:
        label = "NOT " + self.target if self.negated else self.target
        if self.kind == "unreachable":
            return f"{label}: UNREACHABLE"
        route = " -> ".join(self.path)
        return (
            f"{label}: {self.kind} via {route}"
            f" (~{self.estimated_associations} associations)"
        )


@dataclasses.dataclass(frozen=True)
class QueryPlan:
    """The full execution plan of a query specification."""

    source: str
    source_objects: int | None
    combine: str
    targets: tuple[TargetPlan, ...]

    @property
    def executable(self) -> bool:
        """True when every target is reachable."""
        return all(target.kind != "unreachable" for target in self.targets)

    def render(self) -> str:
        scope = (
            "entire source"
            if self.source_objects is None
            else f"{self.source_objects} uploaded objects"
        )
        lines = [f"ANNOTATE {self.source} ({scope}), combine = {self.combine}"]
        lines.extend(f"  {target.describe()}" for target in self.targets)
        if not self.executable:
            lines.append("  !! plan is not executable")
        return "\n".join(lines)


def _edge_size(graph, step_source: str, step_target: str) -> int:
    data = graph.get_edge_data(step_source, step_target)
    if not data:
        return 0
    return max(attrs.get("size", 0) for attrs in data.values())


def plan_query(genmapper: GenMapper, spec: QuerySpec) -> QueryPlan:
    """Resolve every target of a spec to a plan without executing it."""
    graph = genmapper.source_graph()
    target_plans = []
    for target in spec.targets:
        if target.via:
            path = (spec.source, *target.via, target.name)
            kind = "composed" if len(path) > 2 else "stored"
            hops_exist = all(
                graph.has_edge(a, b) for a, b in zip(path, path[1:])
            )
            if not hops_exist:
                target_plans.append(
                    TargetPlan(target.name, "unreachable", (), 0,
                               target.negated)
                )
                continue
        else:
            try:
                path = shortest_path(graph, spec.source, target.name)
            except PathNotFoundError:
                target_plans.append(
                    TargetPlan(target.name, "unreachable", (), 0,
                               target.negated)
                )
                continue
            kind = "stored" if len(path) == 2 else "composed"
        estimate = min(
            (_edge_size(graph, a, b) for a, b in zip(path, path[1:])),
            default=0,
        )
        target_plans.append(
            TargetPlan(
                target=target.name,
                kind=kind,
                path=path,
                estimated_associations=estimate,
                negated=target.negated,
            )
        )
    return QueryPlan(
        source=spec.source,
        source_objects=None if spec.accessions is None else len(spec.accessions),
        combine=spec.combine.value,
        targets=tuple(target_plans),
    )
