"""Batch query execution — GenMapper in automated analysis pipelines.

Paper Section 2: the operators "also represent the means to integrate
GenMapper with external applications to provide automatic analysis
pipelines with annotation data", and Section 5.2 runs exactly such a
pipeline.  This module executes a *batch file* of ANNOTATE queries
unattended and writes one result file per query — the glue an external
pipeline calls between its own steps.

Batch file format (``#`` comments, blank lines ignored)::

    # name: go_profiles
    ANNOTATE LocusLink WITH Hugo AND GO

    # name: disease_genes
    ANNOTATE LocusLink WITH OMIM AND Location

Each query may be preceded by a ``# name:`` directive naming its output
file; unnamed queries are numbered ``query_001``, ``query_002``, ...
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.core.genmapper import GenMapper
from repro.export.writers import write_view
from repro.gam.errors import GenMapperError
from repro.query.language import parse_query
from repro.query.session import run_query
from repro.query.spec import QuerySpec


@dataclasses.dataclass(frozen=True)
class BatchEntry:
    """One query of a batch file."""

    name: str
    spec: QuerySpec


@dataclasses.dataclass(frozen=True)
class BatchResult:
    """Outcome of one executed batch entry."""

    name: str
    rows: int
    output: Path | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def parse_batch(text: str) -> list[BatchEntry]:
    """Parse a batch file's text into named query entries."""
    entries: list[BatchEntry] = []
    pending_name: str | None = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            directive = line[1:].strip()
            if directive.lower().startswith("name:"):
                pending_name = directive.split(":", 1)[1].strip()
            continue
        name = pending_name or f"query_{len(entries) + 1:03d}"
        entries.append(BatchEntry(name=name, spec=parse_query(line)))
        pending_name = None
    return entries


def read_batch(path: str | Path) -> list[BatchEntry]:
    """Read and parse a batch file."""
    return parse_batch(Path(path).read_text(encoding="utf-8"))


def run_batch(
    genmapper: GenMapper,
    entries: list[BatchEntry],
    output_dir: str | Path | None = None,
    fmt: str = "tsv",
    stop_on_error: bool = False,
    workers: int = 1,
) -> list[BatchResult]:
    """Execute every entry; optionally write one result file per query.

    Failures are captured per entry (the pipeline keeps going) unless
    ``stop_on_error`` is set.

    ``workers`` > 1 executes entries concurrently on a thread pool — safe
    because the storage layer hands each worker thread its own pooled read
    connection (see ``docs/storage.md``).  Results keep batch-file order;
    with ``stop_on_error`` the result list is truncated after the first
    (in batch order) failure, though entries already in flight still run.
    """
    if workers > 1 and len(entries) > 1:
        return _run_batch_threaded(
            genmapper, entries, output_dir, fmt, stop_on_error, workers
        )
    results = []
    for entry in entries:
        result = _execute_entry(genmapper, entry, output_dir, fmt)
        results.append(result)
        if stop_on_error and not result.ok:
            break
    return results


def _execute_entry(
    genmapper: GenMapper,
    entry: BatchEntry,
    output_dir: str | Path | None,
    fmt: str,
) -> BatchResult:
    """Run one batch entry, capturing GenMapper failures in the result."""
    try:
        view = run_query(genmapper, entry.spec)
    except GenMapperError as exc:
        return BatchResult(name=entry.name, rows=0, output=None, error=str(exc))
    output = None
    if output_dir is not None:
        output = write_view(view, Path(output_dir) / f"{entry.name}.{fmt}", fmt)
    return BatchResult(name=entry.name, rows=len(view), output=output)


def _run_batch_threaded(
    genmapper: GenMapper,
    entries: list[BatchEntry],
    output_dir: str | Path | None,
    fmt: str,
    stop_on_error: bool,
    workers: int,
) -> list[BatchResult]:
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(
        max_workers=min(workers, len(entries)), thread_name_prefix="gam-batch"
    ) as executor:
        futures = [
            executor.submit(_execute_entry, genmapper, entry, output_dir, fmt)
            for entry in entries
        ]
        results: list[BatchResult] = []
        for future in futures:
            result = future.result()
            results.append(result)
            if stop_on_error and not result.ok:
                for pending in futures:
                    pending.cancel()
                break
    return results


def render_results(results: list[BatchResult]) -> str:
    """A one-line-per-query execution summary."""
    lines = []
    for result in results:
        if result.ok:
            where = f" -> {result.output}" if result.output else ""
            lines.append(f"ok    {result.name}: {result.rows} rows{where}")
        else:
            lines.append(f"FAIL  {result.name}: {result.error}")
    succeeded = sum(result.ok for result in results)
    lines.append(f"{succeeded}/{len(results)} queries succeeded")
    return "\n".join(lines)
