"""The interactive query session (paper Section 5.1, Figure 6).

``QuerySession`` walks the same steps as GenMapper's web interface:

1. select the relevant source from the imported sources,
2. upload the accessions of interest (file or list; none = whole source),
3. specify targets; GenMapper suggests mapping paths automatically via the
   source graph, or the user picks/saves a custom path,
4. choose the combine method and per-target negation,
5. run ``GenerateView``; inspect the view, retrieve object information,
   start a refinement query from selected result accessions, or export.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from repro.cache.mapping_cache import spec_digest
from repro.core.genmapper import GenMapper
from repro.gam.enums import CombineMethod, RelType
from repro.gam.errors import QuerySpecError, UnknownSourceError
from repro.gam.records import Association
from repro.obs import annotate_event, event_stage, get_registry, get_tracer
from repro.operators.views import AnnotationView
from repro.pathfinder.search import MappingPath
from repro.query.spec import QuerySpec, QueryTarget
from repro.reliability.deadline import deadline_scope


class QuerySession:
    """Stateful wrapper over one GenMapper for interactive-style querying."""

    def __init__(self, genmapper: GenMapper) -> None:
        self.genmapper = genmapper
        self._source: str | None = None
        self._accessions: frozenset[str] | None = None
        self._targets: list[QueryTarget] = []
        self._combine = CombineMethod.AND
        self._engine = "memory"
        self._timeout: float | None = None
        self._last_view: AnnotationView | None = None

    # -- step 1: source selection ------------------------------------------

    def available_sources(self) -> list[str]:
        """Names of the currently imported sources."""
        return [source.name for source in self.genmapper.sources()]

    def select_source(self, name: str) -> "QuerySession":
        """Choose the source whose objects are to be annotated."""
        if name not in self.available_sources():
            raise UnknownSourceError(name)
        self._source = name
        self._accessions = None
        self._targets.clear()
        self._last_view = None
        return self

    # -- step 2: accession upload --------------------------------------------

    def upload_accessions(self, accessions: Iterable[str]) -> "QuerySession":
        """Provide the objects of interest (copy-and-paste equivalent)."""
        self._require_source()
        self._accessions = frozenset(str(a).strip() for a in accessions)
        return self

    def upload_accession_file(self, path: str | Path) -> "QuerySession":
        """Load accessions from a file, one per line."""
        with Path(path).open("r", encoding="utf-8") as handle:
            accessions = [line.strip() for line in handle if line.strip()]
        return self.upload_accessions(accessions)

    def use_entire_source(self) -> "QuerySession":
        """Consider all objects of the source (the upload-nothing default)."""
        self._require_source()
        self._accessions = None
        return self

    # -- step 3: targets and paths ----------------------------------------------

    def available_targets(self) -> list[str]:
        """Sources reachable from the selected source via mapping paths."""
        self._require_source()
        graph = self.genmapper.source_graph()
        if self._source not in graph:
            return []
        import networkx as nx

        component = nx.node_connected_component(graph, self._source)
        return sorted(name for name in component if name != self._source)

    def suggest_path(self, target: str) -> MappingPath:
        """The shortest mapping path GenMapper would use for a target."""
        self._require_source()
        return self.genmapper.find_path(self._source, target)

    def suggest_paths(self, target: str, k: int = 5) -> list[MappingPath]:
        """Alternative paths, for manual selection."""
        self._require_source()
        return self.genmapper.find_paths(self._source, target, k)

    def add_target(
        self,
        name: str,
        accessions: Iterable[str] | None = None,
        negated: bool = False,
        via: Iterable[str] = (),
        saved_path: str | None = None,
    ) -> "QuerySession":
        """Add a target, optionally restricted/negated/path-customized.

        ``saved_path`` loads a path persisted with
        :meth:`GenMapper.save_path`; its endpoints must match the current
        source and the target.
        """
        self._require_source()
        via = tuple(via)
        if saved_path is not None:
            path = self.genmapper.load_path(saved_path)
            if path[0] != self._source or path[-1] != name:
                raise QuerySpecError(
                    f"saved path {saved_path!r} connects {path[0]} to"
                    f" {path[-1]}, not {self._source} to {name}"
                )
            via = tuple(path[1:-1])
        self._targets.append(
            QueryTarget(
                name=name,
                accessions=None if accessions is None else frozenset(accessions),
                negated=negated,
                via=via,
            )
        )
        return self

    def clear_targets(self) -> "QuerySession":
        """Remove all configured targets."""
        self._targets.clear()
        return self

    # -- step 4: combination --------------------------------------------------------

    def combine_with(self, method: CombineMethod | str) -> "QuerySession":
        """AND or OR combination of the target mappings."""
        self._combine = CombineMethod.parse(method)
        return self

    def use_engine(self, engine: str) -> "QuerySession":
        """Pick the view execution engine: ``"memory"`` or ``"sql"``."""
        if engine not in ("memory", "sql"):
            raise QuerySpecError(f"unknown view engine {engine!r}")
        self._engine = engine
        return self

    # -- step 5: execution ------------------------------------------------------------

    def spec(self) -> QuerySpec:
        """The current state as an immutable query specification."""
        self._require_source()
        return QuerySpec(
            source=self._source,
            accessions=self._accessions,
            targets=tuple(self._targets),
            combine=self._combine,
        )

    def set_deadline(self, seconds: float | None) -> "QuerySession":
        """Bound every subsequent :meth:`run` to a time budget.

        A query that exceeds the budget aborts with
        :class:`repro.reliability.deadline.DeadlineExceeded` instead of
        holding the session (or a web worker) indefinitely.  ``None``
        removes the bound.
        """
        if seconds is not None and seconds <= 0:
            raise QuerySpecError("deadline must be positive (or None)")
        self._timeout = seconds
        return self

    def run(self, timeout: float | None = None) -> AnnotationView:
        """Apply ``GenerateView`` to the current specification.

        ``timeout`` bounds this one execution; without it the session's
        :meth:`set_deadline` budget (if any) applies.
        """
        spec = self.spec()
        view = run_query(
            self.genmapper,
            spec,
            engine=self._engine,
            timeout=timeout if timeout is not None else self._timeout,
        )
        self._last_view = view
        return view

    def last_view(self) -> AnnotationView:
        """The most recent result; raises if no query has run yet."""
        if self._last_view is None:
            raise QuerySpecError("no query has been run in this session")
        return self._last_view

    def cache_stats(self) -> dict | None:
        """The mapping cache's counters (hits, misses, evictions, ...),
        or ``None`` when the GenMapper runs without a cache."""
        return self.genmapper.cache_stats()

    # -- post-query actions ---------------------------------------------------------------

    def object_info(
        self, accession: str
    ) -> list[tuple[str, RelType, Association]]:
        """Names and associations of one result object (Figure 6c)."""
        self._require_source()
        return self.genmapper.object_info(self._source, accession)

    def refine(self, accessions: Iterable[str]) -> "QuerySession":
        """Start a new query over selected result accessions (Figure 6b:
        "the interesting accessions ... can be selected to start a new
        query")."""
        self._require_source()
        view = self.last_view()
        available = set(view.source_objects())
        chosen = frozenset(accessions)
        unknown = chosen - available
        if unknown:
            raise QuerySpecError(
                f"accessions not in the last result: {sorted(unknown)[:5]}"
            )
        self._accessions = chosen
        self._targets.clear()
        self._last_view = None
        return self

    def export(self, path: str | Path, fmt: str = "tsv") -> Path:
        """Save the last view for analysis in external tools."""
        from repro.export.writers import write_view

        return write_view(self.last_view(), path, fmt)

    def _require_source(self) -> None:
        if self._source is None:
            raise QuerySpecError("select a source first")


def spec_digest_of(spec: QuerySpec) -> str:
    """A stable short digest identifying one query's shape.

    Shared by the web layer (wide events, slow-log grouping, the
    ``ETag`` of cacheable responses) and anything else that needs to
    group repeated executions of the same logical query: two specs with
    the same source, accession set, target list and combine method
    digest identically regardless of where they were built.
    """
    return spec_digest(
        spec.source,
        tuple(sorted(spec.accessions)) if spec.accessions else None,
        tuple(
            (
                target.name,
                tuple(sorted(target.accessions)) if target.accessions else None,
                target.negated,
                target.via,
            )
            for target in spec.targets
        ),
        spec.combine.value,
    )


def run_query(
    genmapper: GenMapper,
    spec: QuerySpec,
    engine: str = "memory",
    timeout: float | None = None,
) -> AnnotationView:
    """Execute a query specification on a GenMapper instance.

    ``timeout`` installs a deadline for the execution (kept when an
    outer scope already holds a tighter one); the storage layer and the
    long-running operators abort with ``DeadlineExceeded`` once it is
    spent.
    """
    with get_tracer().span(
        "query.run",
        source=spec.source,
        targets=len(spec.targets),
        engine=engine,
    ) as span:
        with deadline_scope(timeout), event_stage("query.run"):
            view = genmapper.generate_view(
                spec.source,
                targets=[target.to_target_spec() for target in spec.targets],
                source_objects=spec.accessions,
                combine=spec.combine,
                engine=engine,
            )
        span.tag(rows=len(view))
    annotate_event(rows=len(view), engine=engine, query_source=spec.source)
    get_registry().counter("queries_total", engine=engine).inc()
    return view
