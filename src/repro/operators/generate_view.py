"""``GenerateView`` — the annotation-view construction algorithm (Figure 5).

The implementation follows the paper's pseudo-code line by line::

    GenerateView(S, s, T1, t1, ..., Tm, tm, [AND|OR], {negated})
    V = s                                  # all given source objects
    For i = 1..m
        Determine mapping Mi: S <-> Ti     # Map or Compose
        mi = RestrictDomain(Mi, s)
        mi = RestrictRange(mi, ti)
        If negated[Ti]
            si' = s \\ Domain(mi)           # objects without the annotation
            mi' = RestrictDomain(Mi, si')
            mi  = mi' right outer join si'  # preserve objects w/o assoc.
        End If
        V = V (inner | left outer) join mi on S
    End For

``AND`` extends the view with inner joins, ``OR`` with left outer joins.
Mapping determination is delegated to a *resolver* callable so this module
stays independent of the path finder: the :class:`repro.core.GenMapper`
facade passes a resolver that first tries ``Map`` and then falls back to a
shortest-path ``Compose``.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from collections.abc import Callable, Iterable, Sequence

from repro.gam.enums import CombineMethod
from repro.gam.errors import ViewGenerationError
from repro.obs import get_tracer
from repro.operators.mapping import Mapping
from repro.operators.views import AnnotationView
from repro.reliability.deadline import check_deadline

#: Resolves the mapping S <-> Ti for a target specification.
MappingResolver = Callable[[str, "TargetSpec"], Mapping]


@dataclasses.dataclass(frozen=True)
class TargetSpec:
    """One target Ti of a ``GenerateView`` call.

    Parameters
    ----------
    name:
        The target source name.
    restrict:
        Optional set of relevant target accessions (the paper's ``ti``);
        ``None`` covers all existing objects of the target.
    negated:
        When True the target contributes the objects *not* annotated with
        the (restricted) target objects, per Figure 5.
    via:
        Optional explicit mapping path (list of intermediate source names)
        a resolver should use instead of path discovery.
    """

    name: str
    restrict: frozenset[str] | None = None
    negated: bool = False
    via: tuple[str, ...] = ()

    @classmethod
    def of(
        cls,
        name: str,
        restrict: Iterable[str] | None = None,
        negated: bool = False,
        via: Iterable[str] = (),
    ) -> "TargetSpec":
        """Convenience constructor normalizing collection arguments."""
        return cls(
            name=name,
            restrict=None if restrict is None else frozenset(restrict),
            negated=negated,
            via=tuple(via),
        )


def generate_view(
    resolver: MappingResolver,
    source: str,
    source_objects: Iterable[str],
    targets: Sequence[TargetSpec],
    combine: CombineMethod | str = CombineMethod.AND,
) -> AnnotationView:
    """Build the annotation view V of ``m + 1`` attributes (Figure 5)."""
    combine = CombineMethod.parse(combine)
    relevant = sorted(set(source_objects))
    if not targets:
        return AnnotationView((source,), tuple((obj,) for obj in relevant))
    seen_names: set[str] = {source}
    for spec in targets:
        if spec.name in seen_names:
            raise ViewGenerationError(
                f"duplicate view column {spec.name!r}; use distinct targets"
            )
        seen_names.add(spec.name)

    tracer = get_tracer()
    with tracer.span(
        "operator.generate_view",
        source=source,
        targets=len(targets),
        objects=len(relevant),
        combine=combine.value,
    ) as view_span:
        # V = s: start with all given source objects.
        view_rows: list[tuple] = [(obj,) for obj in relevant]
        for spec in targets:
            # One check per target: each target resolves (and possibly
            # composes) a whole mapping, the view's unit of real work.
            check_deadline()
            with tracer.span(
                "operator.generate_view.target", target=spec.name
            ) as span:
                mapping = resolver(source, spec)
                sub_mapping = _sub_mapping(mapping, relevant, spec)
                view_rows = _join(view_rows, sub_mapping, combine)
                span.tag(rows=len(view_rows))
        view_span.tag(rows=len(view_rows))
    columns = (source, *(spec.name for spec in targets))
    return AnnotationView(columns, tuple(view_rows))


def _sub_mapping(
    mapping: Mapping, relevant: Sequence[str], spec: TargetSpec
) -> dict[str, list[str | None]]:
    """The per-target join partner lists: mi of Figure 5, keyed by S."""
    # mi = RestrictRange(RestrictDomain(Mi, s), ti)
    restricted = mapping.restrict_domain(relevant)
    if spec.restrict is not None:
        restricted = restricted.restrict_range(spec.restrict)
    if not spec.negated:
        return _partners(restricted)
    # si' = s \ Domain(mi); mi' = RestrictDomain(Mi, si')
    uninvolved = set(relevant) - restricted.domain()
    fallback = mapping.restrict_domain(uninvolved)
    partners = _partners(fallback)
    # mi = mi' right outer join si' on S: keep objects without associations.
    for obj in uninvolved:
        partners.setdefault(obj, [None])
    return partners


def _partners(mapping: Mapping) -> dict[str, list[str | None]]:
    grouped: dict[str, list[str | None]] = defaultdict(list)
    for assoc in mapping:
        if assoc.target_accession not in grouped[assoc.source_accession]:
            grouped[assoc.source_accession].append(assoc.target_accession)
    for partners in grouped.values():
        partners.sort(key=lambda value: (value is None, value or ""))
    return dict(grouped)


def _join(
    view_rows: list[tuple],
    sub_mapping: dict[str, list[str | None]],
    combine: CombineMethod,
) -> list[tuple]:
    """V = V inner/left-outer join mi on S."""
    joined: list[tuple] = []
    for row in view_rows:
        partners = sub_mapping.get(row[0], [])
        if partners:
            joined.extend(row + (partner,) for partner in partners)
        elif combine == CombineMethod.OR:
            joined.append(row + (None,))
        # AND: inner join — rows without a partner are dropped.
    return joined
