"""An alternative GenerateView execution engine: compilation to one SQL
query over the four GAM tables.

Paper Section 4.2: "the operations are described declaratively and leave
room for optimizations in the implementation".  The default engine
(:mod:`repro.operators.generate_view`) loads mappings into memory and
joins there; this engine instead compiles the whole view — including
multi-hop ``Compose`` paths, range restrictions and Figure 5 negation —
into a single CTE-based SQL statement that the relational backend
executes, never materializing intermediate mappings in Python.

Semantics are identical by construction and verified by tests that compare
both engines over randomized universes; the ``bench_sql_engine`` ablation
measures when pushing the join into SQL wins.

The same pushdown idea accelerates ``Compose``: :func:`compose_sql` runs a
whole mapping path — the pairwise joins *and* the best-evidence
aggregation — as one set-based SQL statement over ``object_rel``, instead
of the Python dict loops in :mod:`repro.operators.compose`.  It applies
whenever every leg of the path is a stored mapping and the evidence
combiner is one of the two named policies (``product``, ``min``); ad-hoc
combiners and derived in-memory legs fall back to the Python join.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.cache.deps import record_dependency
from repro.gam.enums import CombineMethod, RelType
from repro.gam.errors import UnknownMappingError, ViewGenerationError
from repro.gam.records import SourceRel
from repro.gam.repository import GamRepository
from repro.obs import get_tracer
from repro.operators.generate_view import TargetSpec
from repro.operators.mapping import Mapping
from repro.operators.views import AnnotationView, row_sort_key


def resolve_hop_rel(
    repository: GamRepository, step_source: str, step_target: str
) -> tuple[SourceRel, bool]:
    """The stored mapping of one path hop and whether it is forward-stored.

    Prefers imported annotation mappings over derived ones, matching
    :meth:`GamRepository.fetch_mapping_associations`.
    """
    # Scoped cache invalidation: the compiled plan (and anything cached
    # from it) depends on both hop endpoints.
    record_dependency(step_source, step_target)
    rels = repository.mappings_between(step_source, step_target)
    if not rels:
        raise UnknownMappingError(step_source, step_target)
    rels.sort(key=lambda rel: (rel.type.is_derived, rel.src_rel_id))
    rel = rels[0]
    source1 = repository.get_source(rel.source1_id)
    forward = source1.name == step_source
    return rel, forward


class _ChainJoinPlan:
    """The shared skeleton of a pushed-down mapping-path chain join.

    Built once per statement by :func:`_chain_join_plan` and rendered two
    ways: as a SELECT returning accession pairs (:func:`compose_sql`) and
    as an ``INSERT ... SELECT`` writing object-id pairs straight into
    ``object_rel`` (:func:`materialize_composed_sql`).
    """

    __slots__ = (
        "first_rel",
        "start_expr",
        "end_expr",
        "joins",
        "join_parameters",
        "chain_evidence",
    )

    def __init__(self, first_rel, start_expr, end_expr, joins,
                 join_parameters, chain_evidence) -> None:
        self.first_rel = first_rel
        self.start_expr = start_expr
        self.end_expr = end_expr
        self.joins = joins
        self.join_parameters = join_parameters
        self.chain_evidence = chain_evidence


def _chain_join_plan(
    repository: GamRepository, steps: Sequence[str], combiner: str
) -> _ChainJoinPlan:
    """Resolve a mapping path into the chain-join FROM clause.

    Hop 1 anchors the FROM clause; its rel id binds in the WHERE, so the
    JOIN parameters (hops 2..n) come first to match the statement text.
    """
    if combiner not in ("product", "min"):
        raise ValueError(f"no SQL pushdown for combiner {combiner!r}")
    first_rel, first_forward = resolve_hop_rel(repository, steps[0], steps[1])
    start_column = "object1_id" if first_forward else "object2_id"
    prev_end = "object2_id" if first_forward else "object1_id"
    joins = ["object_rel r1"]
    join_parameters: list = []
    evidence_terms = ["r1.evidence"]
    for hop_index, (step_source, step_target) in enumerate(
        zip(steps[1:], steps[2:]), start=2
    ):
        rel, forward = resolve_hop_rel(repository, step_source, step_target)
        this = f"r{hop_index}"
        near = "object1_id" if forward else "object2_id"
        far = "object2_id" if forward else "object1_id"
        joins.append(
            f"JOIN object_rel {this} ON {this}.{near} ="
            f" r{hop_index - 1}.{prev_end}"
            f" AND {this}.src_rel_id = ?"
        )
        join_parameters.append(rel.src_rel_id)
        evidence_terms.append(f"{this}.evidence")
        prev_end = far
    if combiner == "product":
        chain_evidence = " * ".join(evidence_terms)
    else:
        chain_evidence = (
            evidence_terms[0]
            if len(evidence_terms) == 1
            else f"min({', '.join(evidence_terms)})"
        )
    last = f"r{len(steps) - 1}"
    return _ChainJoinPlan(
        first_rel=first_rel,
        start_expr=f"r1.{start_column}",
        end_expr=f"{last}.{prev_end}",
        joins=joins,
        join_parameters=join_parameters,
        chain_evidence=chain_evidence,
    )


def compose_sql(
    repository: GamRepository,
    path: Sequence[str],
    combiner: str = "product",
) -> Mapping:
    """``Compose`` along a stored-mapping path as one SQL statement.

    The chain join runs inside SQLite on ``object_rel``'s covering
    indices; per endpoint pair the strongest chain wins, with chain
    evidence combined by ``combiner``:

    * ``"product"`` — independent-plausibility (evidence multiplied);
    * ``"min"`` — weakest link.

    Folding :func:`repro.operators.compose.compose_pair` pairwise and
    taking one max over full chains agree because both combiners are
    monotonic in each argument — verified against the Python engine by
    ``tests/test_sql_engine.py``.  Raises
    :class:`~repro.gam.errors.UnknownMappingError` when a leg has no
    stored mapping and ``ValueError`` for unknown combiners (callers then
    fall back to the in-memory path).
    """
    if len(path) < 2:
        raise ValueError("a mapping path needs at least two sources")
    steps = [str(step) for step in path]
    source = repository.get_source(steps[0])
    target = repository.get_source(steps[-1])
    with get_tracer().span(
        "operator.compose",
        path=" -> ".join(steps),
        hops=len(steps) - 1,
        engine="sql",
    ) as span:
        plan = _chain_join_plan(repository, steps, combiner)
        sql = (
            "SELECT so.accession AS src, to_.accession AS tgt,"
            f" max({plan.chain_evidence}) AS evidence FROM "
            + "\n  ".join(plan.joins)
            + f"\n  JOIN object so ON so.object_id = {plan.start_expr}"
            + f"\n  JOIN object to_ ON to_.object_id = {plan.end_expr}"
            + "\n  WHERE r1.src_rel_id = ?"
            + "\n  GROUP BY so.accession, to_.accession"
        )
        rows = repository.db.execute_read(
            sql, (*plan.join_parameters, plan.first_rel.src_rel_id)
        ).fetchall()
        rel_type = plan.first_rel.type if len(steps) == 2 else RelType.COMPOSED
        mapping = Mapping.build(
            source.name,
            target.name,
            ((row["src"], row["tgt"], row["evidence"]) for row in rows),
            rel_type=rel_type,
        )
        span.tag(associations=len(mapping))
    return mapping


def materialize_composed_sql(
    repository: GamRepository,
    path: Sequence[str],
    combiner: str,
    rel: SourceRel,
) -> int:
    """Materialize a composed path as one ``INSERT ... SELECT``.

    The same chain join :func:`compose_sql` runs, but grouped on object
    ids and written straight into ``object_rel`` under ``rel`` — the
    derived associations never round-trip through Python accession lists.
    ``INSERT OR IGNORE`` keeps re-materialization idempotent; the returned
    count comes from the write cursor's ``rowcount`` (only actually
    inserted rows count), mirroring
    :meth:`~repro.gam.repository.GamRepository.add_associations`.
    """
    if len(path) < 3:
        raise ValueError("materializing a composed path needs at least one hop")
    steps = [str(step) for step in path]
    plan = _chain_join_plan(repository, steps, combiner)
    sql = (
        "INSERT OR IGNORE INTO object_rel"
        " (src_rel_id, object1_id, object2_id, evidence)"
        f" SELECT ?, {plan.start_expr}, {plan.end_expr},"
        f" max({plan.chain_evidence}) FROM "
        + "\n  ".join(plan.joins)
        + "\n  WHERE r1.src_rel_id = ?"
        + f"\n  GROUP BY {plan.start_expr}, {plan.end_expr}"
    )
    # Scoped write: the materialized rows belong to the path's endpoint
    # sources — cache entries for unrelated pairs stay warm.
    with repository.db.write_scope(steps[0], steps[-1]):
        cursor = repository.db.execute(
            sql,
            (rel.src_rel_id, *plan.join_parameters, plan.first_rel.src_rel_id),
        )
    return max(cursor.rowcount, 0)


class SqlViewEngine:
    """Compiles and runs annotation views as single SQL statements."""

    def __init__(self, repository: GamRepository) -> None:
        self.repository = repository
        # Compiled plans depend on optimizer statistics; make sure they
        # exist (integrate_directory refreshes them, but databases built
        # through other paths may not have run ANALYZE yet).
        if not repository.db.has_planner_statistics():
            repository.db.analyze()

    # -- public API -----------------------------------------------------------

    def generate_view(
        self,
        source: str,
        source_objects: Iterable[str] | None,
        targets: Sequence[TargetSpec],
        combine: CombineMethod | str = CombineMethod.AND,
        paths: dict[str, Sequence[str]] | None = None,
    ) -> AnnotationView:
        """Build the annotation view entirely inside the database.

        ``paths`` optionally maps a target name to the full mapping path
        (source first); targets without an entry use their ``via`` hints
        or must have a stored direct mapping.
        """
        tracer = get_tracer()
        record_dependency(source)
        with tracer.span(
            "operator.sql_view", source=source, targets=len(targets)
        ) as view_span:
            with tracer.span("operator.sql_view.compile"):
                sql, parameters, columns = self.compile(
                    source, source_objects, targets, combine, paths
                )
            with tracer.span("operator.sql_view.execute"):
                # The compiled view is pure SELECT: run it on the calling
                # thread's pooled read connection, never the writer path.
                rows = self.repository.db.execute_read(
                    sql, tuple(parameters)
                ).fetchall()
            view_span.tag(rows=len(rows))
        return AnnotationView(
            columns,
            tuple(sorted((tuple(row) for row in rows), key=row_sort_key)),
        )

    def compile(
        self,
        source: str,
        source_objects: Iterable[str] | None,
        targets: Sequence[TargetSpec],
        combine: CombineMethod | str = CombineMethod.AND,
        paths: dict[str, Sequence[str]] | None = None,
    ) -> tuple[str, list, tuple[str, ...]]:
        """Compile a view to ``(sql, parameters, column_names)``.

        Non-negated targets take the *inline* fast path: the mapping-path
        hops join ``object_rel`` directly on its covering indices.  Under
        ``OR``, multi-hop paths cannot inline (a dangling partial chain
        would surface as a spurious NULL next to a complete chain), so
        those — and all negated targets, which need Figure 5's
        ``si'``/right-outer-join construction — compile to CTEs instead.
        """
        combine = CombineMethod.parse(combine)
        src = self.repository.get_source(source)
        seen = {src.name}
        for spec in targets:
            if spec.name in seen:
                raise ViewGenerationError(
                    f"duplicate view column {spec.name!r}; use distinct targets"
                )
            seen.add(spec.name)

        ctes: list[str] = []
        # Placeholders must be bound in text order: every CTE (including
        # s) precedes the main body, so CTE parameters come first and the
        # inline joins' parameters last.
        cte_parameters: list = []
        body_parameters: list = []

        # s: the relevant source objects (object_id kept for inline joins).
        s_sql = "SELECT object_id, accession FROM object WHERE source_id = ?"
        cte_parameters.append(src.source_id)
        if source_objects is not None:
            accession_list = sorted(set(source_objects))
            placeholders = ", ".join("?" for __ in accession_list)
            s_sql += f" AND accession IN ({placeholders})"
            cte_parameters.extend(accession_list)
        ctes.append(f"s AS ({s_sql})")

        join_clauses: list[str] = []
        select_columns = ["s.accession AS c0"]
        for index, spec in enumerate(targets, start=1):
            cte_name = f"m{index}"
            path = self._resolve_path(src.name, spec, paths)
            # Under OR, inlining is only safe for single-hop, unrestricted
            # targets: a dangling partial chain or an ON-clause restriction
            # miss would surface as a spurious NULL row next to a real one.
            can_inline = not spec.negated and (
                combine == CombineMethod.AND
                or (len(path) == 2 and spec.restrict is None)
            )
            if can_inline:
                clause, clause_params, column = self._inline_target(
                    index, path, spec, combine
                )
                join_clauses.append(clause)
                body_parameters.extend(clause_params)
                select_columns.append(f"{column} AS c{index}")
                continue
            raw_sql, raw_params = self._path_subquery(path)
            if spec.negated:
                restricted = f"{cte_name}_restricted"
                raw = f"{cte_name}_raw"
                ctes.append(f"{raw} AS ({raw_sql})")
                cte_parameters.extend(raw_params)
                restrict_sql = f"SELECT src, tgt FROM {raw} JOIN s ON s.accession = src"
                if spec.restrict is not None:
                    values = sorted(spec.restrict)
                    placeholders = ", ".join("?" for __ in values)
                    restrict_sql += f" WHERE tgt IN ({placeholders})"
                    ctes.append(f"{restricted} AS ({restrict_sql})")
                    cte_parameters.extend(values)
                else:
                    ctes.append(f"{restricted} AS ({restrict_sql})")
                # si' = s \ Domain(mi); mi = RestrictDomain(Mi_raw, si')
                # right outer join si' (Figure 5).
                ctes.append(
                    f"{cte_name} AS ("
                    f" SELECT su.accession AS src, r.tgt AS tgt"
                    f" FROM (SELECT accession FROM s WHERE accession NOT IN"
                    f"       (SELECT src FROM {restricted})) su"
                    f" LEFT JOIN {raw} r ON r.src = su.accession)"
                )
            else:
                sub_sql = raw_sql
                if spec.restrict is not None:
                    values = sorted(spec.restrict)
                    placeholders = ", ".join("?" for __ in values)
                    sub_sql = (
                        f"SELECT src, tgt FROM ({raw_sql})"
                        f" WHERE tgt IN ({placeholders})"
                    )
                    ctes.append(f"{cte_name} AS ({sub_sql})")
                    cte_parameters.extend(raw_params)
                    cte_parameters.extend(values)
                else:
                    ctes.append(f"{cte_name} AS ({sub_sql})")
                    cte_parameters.extend(raw_params)
            join_kind = (
                "JOIN" if combine == CombineMethod.AND else "LEFT JOIN"
            )
            join_clauses.append(
                f"{join_kind} {cte_name} ON {cte_name}.src = s.accession"
            )
            select_columns.append(f"{cte_name}.tgt AS c{index}")

        sql = (
            "WITH "
            + ",\n     ".join(ctes)
            + "\nSELECT DISTINCT "
            + ", ".join(select_columns)
            + "\nFROM s\n"
            + "\n".join(join_clauses)
        )
        columns = (src.name, *(spec.name for spec in targets))
        return sql, [*cte_parameters, *body_parameters], columns

    def _inline_target(
        self,
        index: int,
        path: Sequence[str],
        spec: TargetSpec,
        combine: CombineMethod,
    ) -> tuple[str, list, str]:
        """Compile one target as direct indexed joins on ``object_rel``.

        Returns ``(join_clause, parameters, target_column_expr)``.  Range
        restrictions live in the final object join's ON clause so that an
        OR (left) join still yields NULL rather than dropping the row.
        """
        kind = "JOIN" if combine == CombineMethod.AND else "LEFT JOIN"
        parameters: list = []
        clauses: list[str] = []
        prev_expr = "s.object_id"
        for hop, (step_source, step_target) in enumerate(
            zip(path, path[1:]), start=1
        ):
            rel, forward = self._hop_rel(step_source, step_target)
            alias = f"t{index}r{hop}"
            near = "object1_id" if forward else "object2_id"
            far = "object2_id" if forward else "object1_id"
            clauses.append(
                f"{kind} object_rel {alias} ON {alias}.{near} = {prev_expr}"
                f" AND {alias}.src_rel_id = ?"
            )
            parameters.append(rel.src_rel_id)
            prev_expr = f"{alias}.{far}"
        target_alias = f"t{index}o"
        object_join = (
            f"{kind} object {target_alias}"
            f" ON {target_alias}.object_id = {prev_expr}"
        )
        if spec.restrict is not None:
            values = sorted(spec.restrict)
            placeholders = ", ".join("?" for __ in values)
            object_join += f" AND {target_alias}.accession IN ({placeholders})"
            parameters.extend(values)
        clauses.append(object_join)
        return "\n".join(clauses), parameters, f"{target_alias}.accession"

    # -- path resolution ----------------------------------------------------------

    def _resolve_path(
        self,
        source: str,
        spec: TargetSpec,
        paths: dict[str, Sequence[str]] | None,
    ) -> list[str]:
        if paths and spec.name in paths:
            return list(paths[spec.name])
        if spec.via:
            return [source, *spec.via, spec.name]
        # Fall back to the source graph's shortest path.
        from repro.pathfinder.graph import build_source_graph
        from repro.pathfinder.search import shortest_path

        graph = build_source_graph(self.repository)
        return list(shortest_path(graph, source, spec.name))

    def _hop_rel(self, step_source: str, step_target: str) -> tuple[SourceRel, bool]:
        """The stored mapping of one hop and whether it is forward-stored."""
        return resolve_hop_rel(self.repository, step_source, step_target)

    def _path_subquery(self, path: Sequence[str]) -> tuple[str, list]:
        """Compile a mapping path into ``SELECT DISTINCT src, tgt`` SQL."""
        if len(path) < 2:
            raise ViewGenerationError(
                f"a mapping path needs at least two sources: {path!r}"
            )
        # Parameters must follow placeholder order in the generated text:
        # hop 2..n rel ids appear in JOIN clauses, hop 1's in the WHERE.
        join_parameters: list = []
        joins: list[str] = []
        first_rel, first_forward = self._hop_rel(path[0], path[1])
        start_column = "object1_id" if first_forward else "object2_id"
        prev_end = "object2_id" if first_forward else "object1_id"
        joins.append("object_rel r1")
        for hop_index, (step_source, step_target) in enumerate(
            zip(path[1:], path[2:]), start=2
        ):
            rel, forward = self._hop_rel(step_source, step_target)
            this = f"r{hop_index}"
            near = "object1_id" if forward else "object2_id"
            far = "object2_id" if forward else "object1_id"
            joins.append(
                f"JOIN object_rel {this} ON {this}.{near} ="
                f" r{hop_index - 1}.{prev_end}"
                f" AND {this}.src_rel_id = ?"
            )
            join_parameters.append(rel.src_rel_id)
            prev_end = far
        last = f"r{len(path) - 1}"
        sql = (
            "SELECT DISTINCT so.accession AS src, to_.accession AS tgt FROM "
            + "\n  ".join(joins)
            + f"\n  JOIN object so ON so.object_id = r1.{start_column}"
            + f"\n  JOIN object to_ ON to_.object_id = {last}.{prev_end}"
            + "\n  WHERE r1.src_rel_id = ?"
        )
        return sql, [*join_parameters, first_rel.src_rel_id]
