"""Attribute matching: computing Similarity mappings between sources.

Paper Section 3 groups annotation relationships into Fact and Similarity
mappings, the latter "determined by sequence comparisons ... or by an
attribute matching algorithm".  This module is that algorithm for the
attributes the GAM stores: it compares the textual components (names) of
two sources' objects and produces a Similarity mapping whose evidence is
the match score.

Three matchers are provided, from strict to fuzzy:

* :func:`exact_matcher` — case-sensitive equality (evidence 1.0),
* :func:`normalized_matcher` — case/punctuation-insensitive equality,
* :func:`token_jaccard_matcher` — Jaccard similarity of word-token sets,
  the classic schema/instance matching baseline.

``match_attributes`` runs a matcher over two object collections with a
score threshold and an optional top-k cap per source object, mirroring how
instance-level matchers are configured in the authors' related COMA work.
"""

from __future__ import annotations

import dataclasses
import re
from collections import defaultdict
from collections.abc import Callable, Iterable, Sequence

from repro.gam.enums import RelType
from repro.gam.records import GamObject, Source
from repro.gam.repository import GamRepository
from repro.operators.mapping import Mapping

#: Scores a pair of attribute strings into [0, 1].
Matcher = Callable[[str, str], float]

_NORMALIZE_RE = re.compile(r"[^a-z0-9]+")


def exact_matcher(left: str, right: str) -> float:
    """1.0 on exact equality, else 0.0."""
    return 1.0 if left == right else 0.0


def normalize(text: str) -> str:
    """Lowercase and collapse punctuation/whitespace to single spaces."""
    return _NORMALIZE_RE.sub(" ", text.lower()).strip()


def normalized_matcher(left: str, right: str) -> float:
    """1.0 when the normalized forms coincide, else 0.0."""
    return 1.0 if normalize(left) == normalize(right) else 0.0


def tokens(text: str) -> frozenset[str]:
    """The normalized word-token set of a string."""
    return frozenset(normalize(text).split())


def token_jaccard_matcher(left: str, right: str) -> float:
    """Jaccard similarity of the two token sets."""
    left_tokens = tokens(left)
    right_tokens = tokens(right)
    if not left_tokens or not right_tokens:
        return 0.0
    intersection = len(left_tokens & right_tokens)
    union = len(left_tokens | right_tokens)
    return intersection / union


@dataclasses.dataclass(frozen=True)
class MatchConfig:
    """Configuration of an attribute-matching run."""

    matcher: Matcher = token_jaccard_matcher
    #: Minimum score for a pair to enter the mapping.
    threshold: float = 0.8
    #: Keep at most this many best matches per source object (0 = all).
    top_k: int = 1
    #: Which attribute to compare: "text" (the name) or "accession".
    attribute: str = "text"


def _attribute_of(obj: GamObject, attribute: str) -> str | None:
    if attribute == "text":
        return obj.text
    if attribute == "accession":
        return obj.accession
    raise ValueError(f"unknown match attribute {attribute!r}")


def match_objects(
    source_name: str,
    target_name: str,
    source_objects: Iterable[GamObject],
    target_objects: Iterable[GamObject],
    config: MatchConfig = MatchConfig(),
) -> Mapping:
    """Match two object collections into a Similarity mapping.

    Token-based matchers use an inverted index over target tokens so only
    candidate pairs sharing at least one token are scored — the standard
    blocking optimization that keeps matching near-linear for realistic
    name distributions.
    """
    targets = [
        (obj, _attribute_of(obj, config.attribute))
        for obj in target_objects
    ]
    targets = [(obj, value) for obj, value in targets if value]
    use_blocking = config.matcher is token_jaccard_matcher
    block_index: dict[str, list[int]] = defaultdict(list)
    if use_blocking:
        for position, (__, value) in enumerate(targets):
            for token in tokens(value):
                block_index[token].append(position)

    pairs: list[tuple[str, str, float]] = []
    for source_obj in source_objects:
        source_value = _attribute_of(source_obj, config.attribute)
        if not source_value:
            continue
        if use_blocking:
            candidate_positions = sorted(
                {
                    position
                    for token in tokens(source_value)
                    for position in block_index.get(token, ())
                }
            )
            candidates = [targets[position] for position in candidate_positions]
        else:
            candidates = targets
        scored = []
        for target_obj, target_value in candidates:
            score = config.matcher(source_value, target_value)
            if score >= config.threshold:
                scored.append((score, target_obj.accession))
        scored.sort(key=lambda item: (-item[0], item[1]))
        if config.top_k:
            scored = scored[: config.top_k]
        pairs.extend(
            (source_obj.accession, accession, score)
            for score, accession in scored
        )
    return Mapping.build(
        source_name, target_name, pairs, rel_type=RelType.SIMILARITY
    )


def match_attributes(
    repository: GamRepository,
    source: "str | Source",
    target: "str | Source",
    config: MatchConfig = MatchConfig(),
) -> Mapping:
    """Match two stored sources by their objects' attributes."""
    src = repository.get_source(source)
    tgt = repository.get_source(target)
    return match_objects(
        src.name,
        tgt.name,
        repository.objects_of(src),
        repository.objects_of(tgt),
        config,
    )


def evaluate_matching(
    produced: Mapping, truth: Sequence[tuple[str, str]]
) -> dict[str, float]:
    """Precision/recall/F1 of a produced mapping against ground truth."""
    truth_set = set(truth)
    produced_set = produced.pair_set()
    if not produced_set:
        return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
    overlap = len(produced_set & truth_set)
    precision = overlap / len(produced_set)
    recall = overlap / len(truth_set) if truth_set else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}
