"""The simple GAM operations of paper Table 2.

=================  =========================================================
Operation          Definition (Table 2)
=================  =========================================================
``Map(S, T)``      Identify associations between S and T
``Domain(map)``    SELECT DISTINCT S FROM map
``Range(map)``     SELECT DISTINCT T FROM map
``RestrictDomain`` SELECT * FROM map WHERE S in s
``RestrictRange``  SELECT * FROM map WHERE T in t
=================  =========================================================

``Map`` is the only one that touches the database; the others are thin,
readable wrappers over :class:`~repro.operators.mapping.Mapping` so that
analysis code can be written in the paper's vocabulary.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.gam.records import Source
from repro.gam.repository import GamRepository
from repro.operators.mapping import Mapping


def map_(
    repository: GamRepository,
    source: "str | Source",
    target: "str | Source",
) -> Mapping:
    """``Map(S, T)``: load the stored mapping between S and T.

    Associations are oriented source → target regardless of the stored
    direction.  Raises :class:`~repro.gam.errors.UnknownMappingError` when
    no mapping exists — callers that can derive one fall back to
    :func:`repro.operators.compose.compose`.
    """
    src = repository.get_source(source)
    tgt = repository.get_source(target)
    rel, associations = repository.fetch_mapping_associations(src, tgt)
    return Mapping(
        source=src.name,
        target=tgt.name,
        associations=tuple(associations),
        rel_type=rel.type,
    )


def domain(mapping: Mapping) -> set[str]:
    """``Domain(map)``: the distinct source objects involved."""
    return mapping.domain()


def range_(mapping: Mapping) -> set[str]:
    """``Range(map)``: the distinct target objects involved."""
    return mapping.range()


def restrict_domain(mapping: Mapping, objects: Iterable[str]) -> Mapping:
    """``RestrictDomain(map, s)``: the sub-mapping covering given source
    objects."""
    return mapping.restrict_domain(objects)


def restrict_range(mapping: Mapping, objects: Iterable[str]) -> Mapping:
    """``RestrictRange(map, t)``: the sub-mapping covering given target
    objects."""
    return mapping.restrict_range(objects)
