"""High-level GAM operators (paper Section 4.2, Table 2, Figure 5)."""

from repro.operators.compose import (
    compose,
    compose_mappings,
    compose_pair,
    materialization_rows,
    min_evidence,
    product_evidence,
)
from repro.operators.generate_view import MappingResolver, TargetSpec, generate_view
from repro.operators.mapping import Mapping
from repro.operators.matching import (
    MatchConfig,
    evaluate_matching,
    exact_matcher,
    match_attributes,
    match_objects,
    normalized_matcher,
    token_jaccard_matcher,
)
from repro.operators.set_ops import difference, intersection, union
from repro.operators.simple import domain, map_, range_, restrict_domain, restrict_range
from repro.operators.views import NULL_DISPLAY, AnnotationView

__all__ = [
    "NULL_DISPLAY",
    "AnnotationView",
    "Mapping",
    "MatchConfig",
    "MappingResolver",
    "TargetSpec",
    "compose",
    "compose_mappings",
    "compose_pair",
    "difference",
    "domain",
    "evaluate_matching",
    "exact_matcher",
    "generate_view",
    "intersection",
    "map_",
    "match_attributes",
    "match_objects",
    "materialization_rows",
    "min_evidence",
    "normalized_matcher",
    "product_evidence",
    "range_",
    "restrict_domain",
    "restrict_range",
    "token_jaccard_matcher",
    "union",
]
