"""Annotation views — the tabular result of ``GenerateView`` (Figure 3).

An annotation view is a structured representation of annotations for the
objects of one source: one column for the source, one per target, tuples of
related objects as rows.  Views are queryable (filter/project/sort) to
support high-volume analysis, and exportable for further analysis in
external tools (paper Section 5.1).
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Callable, Iterable, Iterator

Row = tuple

#: Placeholder rendered for NULLs introduced by outer joins.
NULL_DISPLAY = "-"


def row_sort_key(row: Row) -> tuple:
    """None-safe lexicographic sort key: NULLs order last per column.

    The canonical row ordering shared by every view producer — the
    in-memory engine (:meth:`AnnotationView.sorted`) and the SQL engine
    (:mod:`repro.operators.sql_engine`) — so both emit identical row
    orders even when OR/negated joins leave ``None`` cells next to
    strings, which a bare ``sorted`` would reject with ``TypeError``.
    """
    return tuple((value is None, value or "") for value in row)


@dataclasses.dataclass(frozen=True)
class AnnotationView:
    """A tabular annotation view.

    ``columns[0]`` is always the annotated source; the remaining columns
    are the targets in specification order.  Cell values are accession
    strings or ``None`` (no annotation, from an OR/negated join).
    """

    columns: tuple[str, ...]
    rows: tuple[Row, ...]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row width {len(row)} does not match"
                    f" {len(self.columns)} columns: {row!r}"
                )

    @property
    def source_column(self) -> str:
        """Name of the annotated source (first column)."""
        return self.columns[0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def is_empty(self) -> bool:
        """True when the view holds no rows."""
        return not self.rows

    # -- queryability ---------------------------------------------------------

    def column_index(self, column: str) -> int:
        """Index of a column; raises ``KeyError`` for unknown names."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(f"view has no column {column!r}") from None

    def column_values(self, column: str, distinct: bool = True) -> list[str]:
        """Non-NULL values of one column, optionally deduplicated."""
        index = self.column_index(column)
        values = [row[index] for row in self.rows if row[index] is not None]
        if not distinct:
            return values
        seen: dict[str, None] = {}
        for value in values:
            seen.setdefault(value, None)
        return list(seen)

    def source_objects(self) -> list[str]:
        """Distinct annotated source objects, in row order."""
        return self.column_values(self.source_column)

    def filter(self, predicate: Callable[[dict], bool]) -> "AnnotationView":
        """Rows for which ``predicate(row_as_dict)`` holds."""
        kept = tuple(row for row in self.rows if predicate(self.row_dict(row)))
        return AnnotationView(self.columns, kept)

    def project(self, columns: Iterable[str]) -> "AnnotationView":
        """A view reduced to the given columns (duplicates dropped)."""
        columns = tuple(columns)
        indices = [self.column_index(column) for column in columns]
        seen: dict[Row, None] = {}
        for row in self.rows:
            seen.setdefault(tuple(row[i] for i in indices), None)
        return AnnotationView(columns, tuple(seen))

    def sorted(self) -> "AnnotationView":
        """Rows sorted lexicographically with NULLs last per column."""
        return AnnotationView(
            self.columns, tuple(sorted(self.rows, key=row_sort_key))
        )

    def row_dict(self, row: Row) -> dict[str, str | None]:
        """One row as a column -> value dict."""
        return dict(zip(self.columns, row))

    def to_dicts(self) -> list[dict[str, str | None]]:
        """All rows as dicts (JSON-friendly)."""
        return [self.row_dict(row) for row in self.rows]

    # -- grouping --------------------------------------------------------------

    def grouped_by_source(self) -> dict[str, list[dict[str, str | None]]]:
        """Rows grouped per annotated source object."""
        grouped: dict[str, list[dict[str, str | None]]] = {}
        for row in self.rows:
            record = self.row_dict(row)
            key = record[self.source_column]
            grouped.setdefault(key, []).append(record)
        return grouped

    def annotation_profile(self, source_accession: str) -> dict[str, list[str]]:
        """Per-target annotation lists of one source object.

        This is the "functional profile" shape used by the Section 5.2
        analysis: a dict target -> sorted accessions.
        """
        profile: dict[str, list[str]] = {column: [] for column in self.columns[1:]}
        index = self.column_index(self.source_column)
        for row in self.rows:
            if row[index] != source_accession:
                continue
            for column in self.columns[1:]:
                value = row[self.column_index(column)]
                if value is not None and value not in profile[column]:
                    profile[column].append(value)
        return {column: sorted(values) for column, values in profile.items()}

    # -- rendering / export -----------------------------------------------------

    def render(self, max_rows: int | None = 40) -> str:
        """A fixed-width text table (the Figure 3 display)."""
        shown = list(self.rows if max_rows is None else self.rows[:max_rows])
        cells = [[str(col) for col in self.columns]]
        for row in shown:
            cells.append(
                [NULL_DISPLAY if value is None else str(value) for value in row]
            )
        widths = [
            max(len(line[i]) for line in cells) for i in range(len(self.columns))
        ]
        divider = "-+-".join("-" * width for width in widths)
        lines = [
            " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
            for line in cells
        ]
        lines.insert(1, divider)
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def to_tsv(self) -> str:
        """Tab-separated export with a header line."""
        lines = ["\t".join(self.columns)]
        for row in self.rows:
            lines.append(
                "\t".join("" if value is None else str(value) for value in row)
            )
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """JSON export: ``{"columns": [...], "rows": [...]}``."""
        return json.dumps(
            {"columns": list(self.columns), "rows": [list(row) for row in self.rows]},
            indent=2,
        )
