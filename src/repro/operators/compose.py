"""The ``Compose`` operation: derive new mappings by transitivity.

Paper Section 4.2: *"if a locus l in LocusLink is annotated with some GO
terms, so are the Unigene entries associated with locus l"*.  Compose takes
a mapping path — two or more mappings connecting two sources — and joins
them pairwise on the shared intermediate source, producing a direct mapping
between the path's endpoints.

Evidence handling extends the paper's future-work note on mappings with
reduced evidence: when associations are chained, their evidence values are
combined by a configurable combiner (``product`` by default, which treats
evidences as independent plausibilities; ``min`` implements a weakest-link
policy).  When several intermediate objects connect the same endpoint pair,
the strongest chain wins.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence

from repro.gam.enums import RelType
from repro.gam.errors import UnknownMappingError
from repro.gam.records import Source
from repro.gam.repository import GamRepository
from repro.obs import get_tracer
from repro.operators.mapping import Mapping
from repro.operators.simple import map_
from repro.reliability.deadline import check_deadline

#: Combines the evidences of two chained associations into one.
EvidenceCombiner = Callable[[float, float], float]

#: How many join iterations run between deadline checks: frequent enough
#: that a pathological Compose aborts promptly, rare enough to be free.
_DEADLINE_STRIDE = 2048


def product_evidence(left: float, right: float) -> float:
    """Independent-plausibility combiner (default)."""
    return left * right


def min_evidence(left: float, right: float) -> float:
    """Weakest-link combiner."""
    return min(left, right)


def compose_pair(
    first: Mapping,
    second: Mapping,
    combiner: EvidenceCombiner = product_evidence,
) -> Mapping:
    """Join two mappings sharing an intermediate source.

    ``first``: S1 ↔ S2 and ``second``: S2 ↔ S3 produce S1 ↔ S3.  The join
    is on target accessions of ``first`` and source accessions of
    ``second`` (the relational join of the paper).  Raises ``ValueError``
    when the mappings do not share the intermediate source.
    """
    if first.target != second.source:
        raise ValueError(
            f"cannot compose {first.source}↔{first.target} with"
            f" {second.source}↔{second.target}: intermediate sources differ"
        )
    check_deadline()
    by_intermediate: dict[str, list] = defaultdict(list)
    for assoc in second:
        by_intermediate[assoc.source_accession].append(assoc)
    best: dict[tuple[str, str], float] = {}
    for index, left in enumerate(first):
        if index % _DEADLINE_STRIDE == 0:
            check_deadline()
        for right in by_intermediate.get(left.target_accession, ()):
            key = (left.source_accession, right.target_accession)
            evidence = combiner(left.evidence, right.evidence)
            if key not in best or evidence > best[key]:
                best[key] = evidence
    return Mapping.build(
        first.source,
        second.target,
        ((acc1, acc2, evidence) for (acc1, acc2), evidence in best.items()),
        rel_type=RelType.COMPOSED,
    )


def compose_mappings(
    mappings: Sequence[Mapping],
    combiner: EvidenceCombiner = product_evidence,
) -> Mapping:
    """Fold :func:`compose_pair` over a mapping path of length >= 1."""
    if not mappings:
        raise ValueError("compose needs at least one mapping")
    result = mappings[0]
    for mapping in mappings[1:]:
        result = compose_pair(result, mapping, combiner)
    return result


#: Named combiners the SQL engine can push down (see ``compose_sql``).
_SQL_COMBINERS: dict = {}


def _sql_combiner_name(combiner: EvidenceCombiner) -> str | None:
    """The pushdown label of a combiner, or None for ad-hoc callables."""
    if not _SQL_COMBINERS:
        _SQL_COMBINERS[product_evidence] = "product"
        _SQL_COMBINERS[min_evidence] = "min"
    return _SQL_COMBINERS.get(combiner)


def compose(
    repository: GamRepository,
    path: Sequence["str | Source"],
    combiner: EvidenceCombiner = product_evidence,
    engine: str = "auto",
) -> Mapping:
    """``Compose`` along a path of source names.

    ``path`` lists the sources of the mapping path in order, e.g.
    ``["Unigene", "LocusLink", "GO"]`` derives Unigene ↔ GO from
    Unigene ↔ LocusLink and LocusLink ↔ GO.  Every consecutive pair must
    have a stored mapping; otherwise :class:`UnknownMappingError` is
    raised (path *discovery* is the path finder's job, not Compose's).

    A two-source path *is* its stored mapping: it is returned directly via
    ``Map`` without running the composition fold at all.

    ``engine`` selects the execution strategy for longer paths:

    * ``"auto"`` (default) — push the whole chain join down into SQL when
      the combiner is one of the named policies (``product_evidence``,
      ``min_evidence``); otherwise join in Python;
    * ``"sql"`` — force the pushdown (raises ``ValueError`` for ad-hoc
      combiners the database cannot express);
    * ``"memory"`` — force the Python dict-join (the seed behaviour).

    Both strategies produce identical mappings; see
    :func:`repro.operators.sql_engine.compose_sql` for why the single
    grouped aggregation agrees with the pairwise fold.
    """
    if len(path) < 2:
        raise ValueError("a mapping path needs at least two sources")
    if engine not in ("auto", "sql", "memory"):
        raise ValueError(f"unknown compose engine {engine!r}")
    names = [step.name if isinstance(step, Source) else str(step) for step in path]
    if len(names) == 2:
        # A single leg is the stored mapping itself, not a derived one —
        # return it straight from Map instead of folding and discarding.
        return map_(repository, names[0], names[1])
    sql_combiner = _sql_combiner_name(combiner)
    if engine == "sql" and sql_combiner is None:
        raise ValueError(
            "compose engine 'sql' requires a named combiner"
            " (product_evidence or min_evidence)"
        )
    if sql_combiner is not None and engine in ("auto", "sql"):
        from repro.operators.sql_engine import compose_sql

        return compose_sql(repository, names, sql_combiner)
    with get_tracer().span(
        "operator.compose",
        path=" -> ".join(names),
        hops=len(names) - 1,
        engine="memory",
    ) as span:
        legs = []
        for step_source, step_target in zip(names, names[1:]):
            legs.append(map_(repository, step_source, step_target))
        composed = compose_mappings(legs, combiner)
        span.tag(associations=len(composed))
    return composed


def materialization_rows(mapping: Mapping) -> list[tuple[str, str, float]]:
    """The mapping's associations as repository ``add_associations`` rows.

    Used when a composed mapping of general interest is materialized in the
    central database (paper Section 1, derived relationships).
    """
    return [
        (assoc.source_accession, assoc.target_accession, assoc.evidence)
        for assoc in mapping
    ]
