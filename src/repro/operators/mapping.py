"""The in-memory ``Mapping`` value object the operators work on.

A mapping is a set of object associations between a source and a target
(paper Section 3: a source-level relationship "typically consists of many
relationships at the object level").  Operators in :mod:`repro.operators`
take mappings as input and produce mappings or annotation views as output,
mirroring Table 2's declarative definitions.

Mappings are immutable: every operation returns a new mapping.  That
immutability is what makes the derived access structures safe to memoize:
:meth:`Mapping.pair_set` and the per-source grouping behind
:meth:`Mapping.as_dict`/:meth:`Mapping.targets_of` are computed once per
instance and cached on the (frozen) dataclass, so membership tests and
view generation are O(1) per probe instead of O(n) per call.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.gam.enums import RelType
from repro.gam.records import Association


@dataclasses.dataclass(frozen=True)
class Mapping:
    """An object-level mapping between two sources.

    Parameters
    ----------
    source, target:
        Names of the two sources the mapping connects.
    associations:
        The object associations, oriented source → target.
    rel_type:
        Relationship type; derived operations produce ``COMPOSED``.
    """

    source: str
    target: str
    associations: tuple[Association, ...]
    rel_type: RelType | None = RelType.FACT

    @classmethod
    def build(
        cls,
        source: str,
        target: str,
        pairs: Iterable[tuple],
        rel_type: RelType | None = RelType.FACT,
    ) -> "Mapping":
        """Build a mapping from ``(source_acc, target_acc[, evidence])``
        tuples, deduplicating pairs (keeping the highest evidence)."""
        best: dict[tuple[str, str], float] = {}
        for pair in pairs:
            key = (str(pair[0]), str(pair[1]))
            evidence = float(pair[2]) if len(pair) > 2 else 1.0
            if key not in best or evidence > best[key]:
                best[key] = evidence
        associations = tuple(
            Association(acc1, acc2, evidence)
            for (acc1, acc2), evidence in sorted(best.items())
        )
        return cls(source, target, associations, rel_type)

    # -- basic container protocol ------------------------------------------

    def __len__(self) -> int:
        return len(self.associations)

    def __iter__(self) -> Iterator[Association]:
        return iter(self.associations)

    def __contains__(self, pair: object) -> bool:
        if isinstance(pair, Association):
            pair = (pair.source_accession, pair.target_accession)
        return pair in self.pair_set()

    def is_empty(self) -> bool:
        """True when the mapping holds no associations."""
        return not self.associations

    # -- Table 2 operations --------------------------------------------------

    def domain(self) -> set[str]:
        """``Domain(map)``: the distinct source objects (Table 2)."""
        return {assoc.source_accession for assoc in self.associations}

    def range(self) -> set[str]:
        """``Range(map)``: the distinct target objects (Table 2)."""
        return {assoc.target_accession for assoc in self.associations}

    def restrict_domain(self, objects: Iterable[str]) -> "Mapping":
        """``RestrictDomain(map, s)``: keep associations whose source
        object is in ``objects`` (Table 2)."""
        wanted = set(objects)
        kept = tuple(
            assoc for assoc in self.associations if assoc.source_accession in wanted
        )
        return dataclasses.replace(self, associations=kept)

    def restrict_range(self, objects: Iterable[str]) -> "Mapping":
        """``RestrictRange(map, t)``: keep associations whose target object
        is in ``objects`` (Table 2)."""
        wanted = set(objects)
        kept = tuple(
            assoc for assoc in self.associations if assoc.target_accession in wanted
        )
        return dataclasses.replace(self, associations=kept)

    # -- derived views of the association set --------------------------------

    def invert(self) -> "Mapping":
        """The same mapping oriented target → source."""
        return Mapping(
            source=self.target,
            target=self.source,
            associations=tuple(assoc.reversed() for assoc in self.associations),
            rel_type=self.rel_type,
        )

    def pair_set(self) -> set[tuple[str, str]]:
        """The associations as a set of (source, target) accession pairs.

        Memoized: built once per instance, so ``pair in mapping`` is O(1)
        after the first probe.  Treat the result as read-only.
        """
        cached = self.__dict__.get("_pair_set")
        if cached is None:
            cached = {
                (assoc.source_accession, assoc.target_accession)
                for assoc in self.associations
            }
            object.__setattr__(self, "_pair_set", cached)
        return cached

    def _grouped(self) -> dict[str, list[Association]]:
        """Memoized source accession -> associations grouping."""
        cached = self.__dict__.get("_grouped_by_source")
        if cached is None:
            grouped: dict[str, list[Association]] = defaultdict(list)
            for assoc in self.associations:
                grouped[assoc.source_accession].append(assoc)
            cached = dict(grouped)
            object.__setattr__(self, "_grouped_by_source", cached)
        return cached

    def targets_of(self, source_accession: str) -> list[str]:
        """Target accessions associated with one source object, sorted."""
        return sorted(
            assoc.target_accession
            for assoc in self._grouped().get(source_accession, ())
        )

    def as_dict(self) -> dict[str, list[Association]]:
        """source accession -> its associations (insertion order).

        The outer dict and its lists are fresh copies; mutating them does
        not corrupt the memoized grouping.
        """
        return {
            source: list(associations)
            for source, associations in self._grouped().items()
        }

    def filter_evidence(self, threshold: float) -> "Mapping":
        """Keep associations with evidence >= threshold."""
        kept = tuple(
            assoc for assoc in self.associations if assoc.evidence >= threshold
        )
        return dataclasses.replace(self, associations=kept)

    def cardinality(self) -> str:
        """The mapping's cardinality class: ``1:1``, ``1:n``, ``n:1`` or
        ``n:m`` (paper Section 3: relationships of different cardinality
        can be defined at the source and object level).

        An empty mapping is classified ``1:1`` (nothing contradicts it).
        """
        per_source: dict[str, int] = {}
        per_target: dict[str, int] = {}
        for assoc in self.associations:
            per_source[assoc.source_accession] = (
                per_source.get(assoc.source_accession, 0) + 1
            )
            per_target[assoc.target_accession] = (
                per_target.get(assoc.target_accession, 0) + 1
            )
        source_fans_out = bool(per_source) and max(per_source.values()) > 1
        target_fans_out = bool(per_target) and max(per_target.values()) > 1
        if source_fans_out and target_fans_out:
            return "n:m"
        if source_fans_out:
            return "1:n"
        if target_fans_out:
            return "n:1"
        return "1:1"

    def min_evidence(self) -> float:
        """Smallest evidence value, or 1.0 for an empty mapping."""
        if not self.associations:
            return 1.0
        return min(assoc.evidence for assoc in self.associations)

    def describe(self) -> str:
        """One-line description for logs and the CLI."""
        kind = self.rel_type.value if self.rel_type else "?"
        return (
            f"{self.source} ↔ {self.target} [{kind}]:"
            f" {len(self.associations)} associations,"
            f" |domain|={len(self.domain())}, |range|={len(self.range())}"
        )
