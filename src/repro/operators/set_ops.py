"""Set algebra over mappings with the same endpoints.

The paper's query model combines mappings with AND/OR/NOT inside
``GenerateView``; the same logic is useful directly on mappings, e.g. to
merge a curated Fact mapping with a computed Similarity mapping between the
same two sources, or to subtract known-bad associations before composing.
"""

from __future__ import annotations

from repro.gam.enums import RelType
from repro.operators.mapping import Mapping


def _require_same_endpoints(left: Mapping, right: Mapping) -> None:
    if (left.source, left.target) != (right.source, right.target):
        raise ValueError(
            f"mappings connect different sources:"
            f" {left.source}↔{left.target} vs {right.source}↔{right.target}"
        )


def union(left: Mapping, right: Mapping) -> Mapping:
    """All associations of either mapping; evidence is the maximum."""
    _require_same_endpoints(left, right)
    best: dict[tuple[str, str], float] = {}
    for mapping in (left, right):
        for assoc in mapping:
            key = (assoc.source_accession, assoc.target_accession)
            if key not in best or assoc.evidence > best[key]:
                best[key] = assoc.evidence
    return Mapping.build(
        left.source,
        left.target,
        ((a, b, e) for (a, b), e in best.items()),
        rel_type=_combined_type(left, right),
    )


def intersection(left: Mapping, right: Mapping) -> Mapping:
    """Associations present in both mappings; evidence is the minimum.

    Useful as a consensus filter: an association confirmed by two
    independent mappings is more trustworthy than either alone.
    """
    _require_same_endpoints(left, right)
    right_evidence = {
        (assoc.source_accession, assoc.target_accession): assoc.evidence
        for assoc in right
    }
    pairs = []
    for assoc in left:
        key = (assoc.source_accession, assoc.target_accession)
        if key in right_evidence:
            pairs.append((key[0], key[1], min(assoc.evidence, right_evidence[key])))
    return Mapping.build(
        left.source, left.target, pairs, rel_type=_combined_type(left, right)
    )


def difference(left: Mapping, right: Mapping) -> Mapping:
    """Associations of ``left`` that are not in ``right`` (NOT)."""
    _require_same_endpoints(left, right)
    exclude = right.pair_set()
    pairs = [
        (assoc.source_accession, assoc.target_accession, assoc.evidence)
        for assoc in left
        if (assoc.source_accession, assoc.target_accession) not in exclude
    ]
    return Mapping.build(left.source, left.target, pairs, rel_type=left.rel_type)


def _combined_type(left: Mapping, right: Mapping) -> RelType | None:
    if left.rel_type == right.rel_type:
        return left.rel_type
    return RelType.COMPOSED
