"""Data import — the generic EAV-to-GAM Import step and its orchestration."""

from repro.importer.diff import (
    ReleaseDiff,
    TargetDiff,
    diff_against_store,
    diff_datasets,
)
from repro.importer.importer import GamImporter, ImportReport
from repro.importer.pipeline import (
    IntegrationPipeline,
    ManifestEntry,
    read_manifest,
    write_manifest,
)

__all__ = [
    "GamImporter",
    "ReleaseDiff",
    "TargetDiff",
    "diff_against_store",
    "diff_datasets",
    "ImportReport",
    "IntegrationPipeline",
    "ManifestEntry",
    "read_manifest",
    "write_manifest",
]
