"""Release diffing: what changed between two snapshots of a source.

The paper stresses that the generic model "is robust against changes in
the external sources thereby supporting easy maintenance" and that
re-import performs duplicate elimination so only new data is added.  This
module makes the maintenance story explicit:

* :func:`diff_datasets` compares two parsed releases of the same source at
  the EAV level — added/removed entities, added/removed associations per
  target, renamed objects (same accession, changed name);
* :func:`diff_against_store` compares a freshly parsed release against
  what the GAM database currently holds for that source;
* :class:`ReleaseDiff` renders a human-readable change report, the thing a
  curator reads before approving an update.

Note the GAM import itself is additive (removed upstream associations are
kept as historical knowledge); the diff tells the operator what *would*
disappear if the source were rebuilt from scratch.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.eav.model import NAME_TARGET, RESERVED_TARGETS
from repro.eav.store import EavDataset
from repro.gam.errors import ImportError_
from repro.gam.repository import GamRepository


@dataclasses.dataclass(frozen=True)
class TargetDiff:
    """Association changes of one annotation target."""

    target: str
    added: frozenset[tuple[str, str]]
    removed: frozenset[tuple[str, str]]

    @property
    def unchanged(self) -> bool:
        return not self.added and not self.removed


@dataclasses.dataclass(frozen=True)
class ReleaseDiff:
    """All changes between two releases of one source."""

    source: str
    old_release: str | None
    new_release: str | None
    added_entities: frozenset[str]
    removed_entities: frozenset[str]
    renamed_entities: frozenset[tuple[str, str, str]]  # (entity, old, new)
    targets: tuple[TargetDiff, ...]

    @property
    def is_empty(self) -> bool:
        """True when the releases are identical."""
        return (
            not self.added_entities
            and not self.removed_entities
            and not self.renamed_entities
            and all(target.unchanged for target in self.targets)
        )

    def added_association_count(self) -> int:
        """Total associations present only in the new release."""
        return sum(len(target.added) for target in self.targets)

    def removed_association_count(self) -> int:
        """Total associations present only in the old release."""
        return sum(len(target.removed) for target in self.targets)

    def render(self, max_items: int = 5) -> str:
        """A curator-facing change report."""
        header = (
            f"{self.source}: {self.old_release or '?'} ->"
            f" {self.new_release or '?'}"
        )
        if self.is_empty:
            return f"{header}\n  no changes"
        lines = [header]
        if self.added_entities:
            sample = ", ".join(sorted(self.added_entities)[:max_items])
            lines.append(
                f"  +{len(self.added_entities)} entities ({sample}...)"
                if len(self.added_entities) > max_items
                else f"  +{len(self.added_entities)} entities ({sample})"
            )
        if self.removed_entities:
            sample = ", ".join(sorted(self.removed_entities)[:max_items])
            lines.append(f"  -{len(self.removed_entities)} entities ({sample})")
        if self.renamed_entities:
            for entity, old, new in sorted(self.renamed_entities)[:max_items]:
                lines.append(f"  ~ {entity}: {old!r} -> {new!r}")
        for target in self.targets:
            if target.unchanged:
                continue
            lines.append(
                f"  {target.target}: +{len(target.added)}"
                f" / -{len(target.removed)} associations"
            )
        return "\n".join(lines)


def _entity_names(dataset: EavDataset) -> dict[str, str]:
    names: dict[str, str] = {}
    for row in dataset:
        if row.target == NAME_TARGET and row.text:
            names.setdefault(row.entity, row.text)
    return names


def _associations_by_target(
    dataset: EavDataset,
) -> dict[str, set[tuple[str, str]]]:
    grouped: dict[str, set[tuple[str, str]]] = defaultdict(set)
    for row in dataset:
        if row.target in RESERVED_TARGETS:
            continue
        grouped[row.target].add((row.entity, row.accession))
    return grouped


def diff_datasets(old: EavDataset, new: EavDataset) -> ReleaseDiff:
    """Diff two parsed releases of the same source."""
    if old.source_name != new.source_name:
        raise ImportError_(
            f"cannot diff different sources:"
            f" {old.source_name!r} vs {new.source_name!r}"
        )
    old_entities = set(old.entities())
    new_entities = set(new.entities())
    old_names = _entity_names(old)
    new_names = _entity_names(new)
    renamed = frozenset(
        (entity, old_names[entity], new_names[entity])
        for entity in old_entities & new_entities
        if entity in old_names
        and entity in new_names
        and old_names[entity] != new_names[entity]
    )
    old_assocs = _associations_by_target(old)
    new_assocs = _associations_by_target(new)
    targets = []
    for target in sorted(set(old_assocs) | set(new_assocs)):
        before = old_assocs.get(target, set())
        after = new_assocs.get(target, set())
        targets.append(
            TargetDiff(
                target=target,
                added=frozenset(after - before),
                removed=frozenset(before - after),
            )
        )
    return ReleaseDiff(
        source=old.source_name,
        old_release=old.release,
        new_release=new.release,
        added_entities=frozenset(new_entities - old_entities),
        removed_entities=frozenset(old_entities - new_entities),
        renamed_entities=renamed,
        targets=tuple(targets),
    )


def diff_against_store(
    repository: GamRepository, dataset: EavDataset
) -> ReleaseDiff:
    """Diff a parsed release against the database's current holdings.

    Reconstructs the stored source as an EAV-level snapshot (entities and
    outgoing mapping associations) and diffs the new release against it.
    """
    source = repository.find_source(dataset.source_name)
    if source is None:
        # Nothing stored yet: everything in the dataset is an addition.
        empty = EavDataset(dataset.source_name, [], release=None)
        return diff_datasets(empty, dataset)
    stored = EavDataset(source.name, [], release=source.release)
    from repro.eav.model import EavRow

    for obj in repository.objects_of(source):
        if obj.text:
            stored.append(EavRow(obj.accession, NAME_TARGET, obj.text, obj.text))
        else:
            # Presence marker so the entity participates in the diff even
            # without a name; use a reserved no-op target.
            stored.append(EavRow(obj.accession, NAME_TARGET, obj.accession))
    sources_by_id = {s.source_id: s for s in repository.list_sources()}
    for rel in repository.find_source_rels(source1=source):
        if not rel.is_mapping:
            continue
        partner = sources_by_id[rel.source2_id]
        for assoc in repository.associations_of(rel):
            stored.append(
                EavRow(
                    assoc.source_accession, partner.name, assoc.target_accession
                )
            )
    return diff_datasets(stored, dataset)
