"""The generic Import step: EAV → GAM transformation (paper Section 4.1).

``Import`` is implemented once and reused for every source — that is the
point of the Parse/Import split.  It:

1. registers the parsed source (duplicate elimination at the source level
   compares name and release audit information),
2. inserts the source's entities as objects (duplicate elimination at the
   object level compares accessions; re-import only inserts new objects),
3. for every annotation target, registers the target source, inserts the
   referenced target objects, and stores the associations under a
   Fact/Similarity mapping,
4. materializes structural rows: ``IS_A`` becomes an intra-source Is-a
   relationship, ``CONTAINS`` becomes a Contains relationship between the
   source and a partition source (e.g. GO and GO.BiologicalProcess).

Re-importing a source against an already-populated database therefore only
relates the new objects with the existing ones, exactly as the paper
describes for re-importing LocusLink after GO is present.
"""

from __future__ import annotations

import contextlib
import dataclasses
import datetime
from collections import defaultdict

from repro.eav.model import (
    CONTAINS_TARGET,
    IS_A_TARGET,
    NAME_TARGET,
    NUMBER_TARGET,
)
from repro.eav.store import EavDataset
from repro.gam.enums import RelType, SourceContent, SourceStructure
from repro.gam.errors import ImportError_
from repro.gam.records import Source
from repro.gam.repository import GamRepository
from repro.obs import get_tracer
from repro.parsers.targets import target_info


@dataclasses.dataclass(frozen=True, slots=True)
class ImportReport:
    """What one import run did, per target."""

    source: Source
    new_objects: int
    #: target name -> number of associations inserted.
    new_associations: dict[str, int]
    #: target name -> number of new target objects inserted.
    new_target_objects: dict[str, int]
    #: Rows skipped because their target objects could not be created.
    skipped_rows: int

    @property
    def total_associations(self) -> int:
        """Total associations inserted across all targets."""
        return sum(self.new_associations.values())

    def summary(self) -> str:
        """One-line description used by the CLI and logs."""
        return (
            f"imported {self.source.name}: +{self.new_objects} objects,"
            f" +{self.total_associations} associations"
            f" across {len(self.new_associations)} mappings"
        )


class GamImporter:
    """Generic EAV-to-GAM importer bound to one repository."""

    def __init__(self, repository: GamRepository, clock=None) -> None:
        self.repository = repository
        self._clock = clock or (lambda: datetime.datetime.now().isoformat(" ", "seconds"))

    def import_dataset(
        self,
        dataset: EavDataset,
        content: SourceContent | str = SourceContent.OTHER,
        structure: SourceStructure | str = SourceStructure.FLAT,
    ) -> ImportReport:
        """Transform one parsed dataset into the GAM representation.

        ``content`` and ``structure`` classify the *parsed* source; target
        sources are classified via :mod:`repro.parsers.targets`.
        """
        if not dataset.source_name:
            raise ImportError_("dataset has no source name")
        repo = self.repository
        tracer = get_tracer()
        structure = self._structure_for(dataset, structure)
        imported_at = self._clock()
        # Sharded engine: a transaction scoped to its sources locks only
        # their shards — which is the whole point of sharding — but then
        # no statement inside it may touch the coordinator's ``source``
        # table.  Pre-register every source this import can mention (the
        # parsed source, annotation targets, partition sources) *outside*
        # the transaction with the exact values the inner calls will pass,
        # so those calls become pure no-op reads.  The monolithic engine
        # keeps the original single-transaction shape: source registration
        # stays atomic with the rows (the chaos tests pin that down).
        if repo.db.sharded:
            scope_names = self._preregister_sources(
                dataset, content, structure, imported_at
            )
            txn_scope = repo.db.write_scope(*scope_names)
        else:
            txn_scope = contextlib.nullcontext()
        with tracer.span(
            "pipeline.import", source=dataset.source_name, rows=len(dataset)
        ) as import_span, txn_scope, repo.db.transaction(), repo.bulk_import():
            source = repo.add_source(
                dataset.source_name,
                content=content,
                structure=structure,
                release=dataset.release,
                imported_at=imported_at,
            )
            with tracer.span("pipeline.import.entities") as span:
                new_objects = self._import_entities(source, dataset)
                # The entity/association dedup of Section 4.1 happens
                # inside add_objects/add_associations: the difference
                # between offered and inserted rows is the duplicate work.
                span.tag(inserted=new_objects)
            new_associations: dict[str, int] = {}
            new_target_objects: dict[str, int] = {}
            skipped = 0
            with tracer.span("pipeline.import.structure"):
                skipped += self._import_structure(source, dataset, new_associations)
            for target in dataset.annotation_targets():
                if target == CONTAINS_TARGET:
                    continue
                with tracer.span("pipeline.import.target", target=target) as span:
                    inserted_objs, inserted_assocs = self._import_target(
                        source, dataset, target
                    )
                    span.tag(objects=inserted_objs, associations=inserted_assocs)
                new_target_objects[target] = inserted_objs
                new_associations[target] = inserted_assocs
            import_span.tag(
                new_objects=new_objects,
                new_associations=sum(new_associations.values()),
                skipped=skipped,
            )
        return ImportReport(
            source=source,
            new_objects=new_objects,
            new_associations=new_associations,
            new_target_objects=new_target_objects,
            skipped_rows=skipped,
        )

    # -- pieces ------------------------------------------------------------

    def _preregister_sources(
        self,
        dataset: EavDataset,
        content: SourceContent | str,
        structure: SourceStructure,
        imported_at: str,
    ) -> list[str]:
        """Register every source this import touches; return their names.

        The parsed source comes first: the sharded engine routes an
        insert to the shard of the innermost scope's first name, and the
        import's own rows belong to the parsed source.  Arguments mirror
        the in-transaction ``add_source`` calls exactly, so re-running
        them inside the transaction updates nothing.
        """
        repo = self.repository
        source = repo.add_source(
            dataset.source_name,
            content=content,
            structure=structure,
            release=dataset.release,
            imported_at=imported_at,
        )
        names = [dataset.source_name]
        for target in dataset.annotation_targets():
            if target == CONTAINS_TARGET:
                continue
            info = target_info(target)
            if info.name.lower() == dataset.source_name.lower():
                continue
            repo.add_source(
                info.name, content=info.content, structure=info.structure
            )
            if info.name not in names:
                names.append(info.name)
        for partition_name in sorted(dataset.partition_entities()):
            repo.add_source(
                partition_name,
                content=source.content,
                structure=SourceStructure.NETWORK,
            )
            if partition_name not in names:
                names.append(partition_name)
        return names

    def _structure_for(
        self, dataset: EavDataset, declared: SourceStructure | str
    ) -> SourceStructure:
        """A source with structural rows must be Network regardless of the
        declared default."""
        declared = SourceStructure.parse(declared)
        targets = set(dataset.targets())
        if IS_A_TARGET in targets or CONTAINS_TARGET in targets:
            return SourceStructure.NETWORK
        return declared

    def _import_entities(self, source: Source, dataset: EavDataset) -> int:
        """Insert the parsed entities, enriched with Name/Number rows."""
        texts: dict[str, str] = {}
        numbers: dict[str, float] = {}
        for row in dataset.rows_for_target(NAME_TARGET):
            if row.text:
                texts.setdefault(row.entity, row.text)
        for row in dataset.rows_for_target(NUMBER_TARGET):
            if row.number is not None:
                numbers.setdefault(row.entity, row.number)
        # CONTAINS rows use the partition name as their entity; the
        # partition is a source, not an object of the parsed source.
        partitions = dataset.partition_entities()
        entity_rows = (
            (entity, texts.get(entity), numbers.get(entity))
            for entity in dataset.entities()
            if entity not in partitions
        )
        return self.repository.add_objects(source, entity_rows)

    def _import_target(
        self, source: Source, dataset: EavDataset, target: str
    ) -> tuple[int, int]:
        """Import one annotation target: objects, mapping, associations."""
        repo = self.repository
        rows = dataset.rows_for_target(target)
        info = target_info(target)
        # Self-references (e.g. a LocusLink record citing another locus)
        # reuse the parsed source itself as the target source.
        if info.name.lower() == source.name.lower():
            target_source = source
        else:
            target_source = repo.add_source(
                info.name, content=info.content, structure=info.structure
            )
        object_rows: dict[str, tuple[str, str | None, float | None]] = {}
        for row in rows:
            existing = object_rows.get(row.accession)
            if existing is None or (existing[1] is None and row.text):
                object_rows[row.accession] = (row.accession, row.text, row.number)
        inserted_objects = repo.add_objects(target_source, object_rows.values())
        rel_type = info.rel_type
        if rel_type == RelType.FACT and dataset.has_reduced_evidence(target):
            rel_type = RelType.SIMILARITY
        rel = repo.ensure_source_rel(source, target_source, rel_type)
        association_rows = (
            (row.entity, row.accession, row.evidence) for row in rows
        )
        inserted_assocs = repo.add_associations(rel, association_rows, strict=True)
        return inserted_objects, inserted_assocs

    def _import_structure(
        self,
        source: Source,
        dataset: EavDataset,
        new_associations: dict[str, int],
    ) -> int:
        """Materialize IS_A and CONTAINS rows; returns skipped-row count."""
        repo = self.repository
        skipped = 0
        is_a_rows = dataset.rows_for_target(IS_A_TARGET)
        if is_a_rows:
            # Parents may not appear as entities (e.g. synthesized EC
            # classes); make sure every endpoint exists as an object.
            endpoints = {row.entity for row in is_a_rows}
            endpoints.update(row.accession for row in is_a_rows)
            repo.add_objects(source, [(accession,) for accession in sorted(endpoints)])
            rel = repo.ensure_source_rel(source, source, RelType.IS_A)
            new_associations[IS_A_TARGET] = repo.add_associations(
                rel, [(row.entity, row.accession) for row in is_a_rows]
            )
        contains_rows = dataset.rows_for_target(CONTAINS_TARGET)
        if contains_rows:
            by_partition: dict[str, list[str]] = defaultdict(list)
            for row in contains_rows:
                by_partition[row.entity].append(row.accession)
            # Partition members must exist as objects of the parsed source;
            # the loop below only writes to the partition sources, so the
            # parsed source's accession set is loop-invariant.
            known = repo.accessions_of(source)
            for partition_name, members in sorted(by_partition.items()):
                partition = repo.add_source(
                    partition_name,
                    content=source.content,
                    structure=SourceStructure.NETWORK,
                )
                repo.add_objects(partition, [(member,) for member in members])
                rel = repo.ensure_source_rel(source, partition, RelType.CONTAINS)
                member_rows = []
                for member in members:
                    if member not in known:
                        skipped += 1
                        continue
                    member_rows.append((member, member))
                new_associations[partition_name] = repo.add_associations(
                    rel, member_rows
                )
        return skipped
