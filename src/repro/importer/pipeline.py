"""Parse-then-import orchestration (paper Figure 2, left side).

The pipeline ties the registry of source parsers to the generic importer:
point it at a downloaded flat file (or a directory of them with a manifest)
and it produces the GAM representation.  A manifest is a small TSV listing
one source per line::

    # file	source	release
    locuslink.txt	LocusLink	2003-10
    go.obo	GO	2003-10

Files are imported in manifest order, which matters only for reporting —
the GAM import itself is order-independent thanks to duplicate elimination.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
from pathlib import Path

from repro.eav.io import read_eav
from repro.eav.store import EavDataset
from repro.gam.errors import ImportError_, ParseError
from repro.gam.repository import GamRepository
from repro.importer.importer import GamImporter, ImportReport
from repro.obs import annotate_event, event_scope, get_registry, get_tracer
from repro.parsers.base import SourceParser, get_parser
from repro.reliability.checkpoint import ImportJournal, file_fingerprint

#: Environment switch: a truthy ``REPRO_IMPORT_RESUME`` makes directory
#: imports skip sources whose checkpoint matches the input file.
RESUME_ENV_VAR = "REPRO_IMPORT_RESUME"


@dataclasses.dataclass(frozen=True, slots=True)
class ManifestEntry:
    """One line of an import manifest."""

    file: str
    source: str
    release: str | None = None


class IntegrationPipeline:
    """Download → Parse → Import, for files already on disk."""

    def __init__(self, repository: GamRepository) -> None:
        self.repository = repository
        self.importer = GamImporter(repository)

    def integrate_file(
        self,
        path: str | Path,
        source_name: str | None = None,
        release: str | None = None,
        parser: SourceParser | None = None,
    ) -> ImportReport:
        """Parse one native flat file and import it.

        The parser is resolved from the registry by ``source_name`` unless
        an explicit ``parser`` instance is given (e.g. a configured
        :class:`~repro.parsers.generic_tsv.GenericTsvParser`).
        """
        path = Path(path)
        if parser is None:
            if source_name is None:
                raise ImportError_(
                    f"cannot integrate {path}: give source_name or a parser"
                )
            parser = get_parser(source_name)
        tracer = get_tracer()
        with event_scope(
            "import",
            source=source_name or type(parser).__name__,
            file=path.name,
        ), tracer.span(
            "pipeline.integrate_file",
            source=source_name or type(parser).__name__,
            file=path.name,
        ):
            with tracer.span("pipeline.parse", file=path.name) as span:
                dataset = parser.parse(path, release=release)
                span.tag(rows=len(dataset))
            report = self.importer.import_dataset(
                dataset, content=parser.content, structure=parser.structure
            )
            _record_import(report)
        return report

    def integrate_eav_file(self, path: str | Path) -> ImportReport:
        """Import a staged ``.eav`` file written by :func:`repro.eav.write_eav`.

        When a parser is registered for the staged source, its GAM
        classification (content/structure) is reused so staging loses no
        metadata versus the direct parse-and-import path.
        """
        with event_scope("import", file=Path(path).name), get_tracer().span(
            "pipeline.integrate_eav_file", file=Path(path).name
        ):
            dataset = read_eav(path)
            from repro.parsers.base import has_parser

            if has_parser(dataset.source_name):
                parser = get_parser(dataset.source_name)
                report = self.importer.import_dataset(
                    dataset, content=parser.content, structure=parser.structure
                )
            else:
                report = self.importer.import_dataset(dataset)
            _record_import(report)
        return report

    def integrate_dataset(
        self, dataset: EavDataset, parser: SourceParser | None = None
    ) -> ImportReport:
        """Import an in-memory dataset (mainly for tests and examples)."""
        with event_scope("import", source=dataset.source_name):
            if parser is None:
                report = self.importer.import_dataset(dataset)
            else:
                report = self.importer.import_dataset(
                    dataset, content=parser.content, structure=parser.structure
                )
            _record_import(report)
        return report

    def integrate_directory(
        self,
        directory: str | Path,
        manifest_name: str = "manifest.tsv",
        workers: int | None = None,
        resume: bool | None = None,
    ) -> list[ImportReport]:
        """Import every source listed in a directory's manifest.

        ``workers`` > 1 integrates the manifest entries on a thread pool
        over the connection pool: parsing overlaps across sources while
        each source's import stays one per-source transaction behind the
        single-writer lock.  The stored result and each source's
        association counts are identical to a serial run; only the
        *attribution* of shared target objects may shift between reports
        (whichever import completes first inserts them), exactly as a
        different manifest order would.  The returned list is always in
        manifest order.  ``workers=None`` reads ``REPRO_IMPORT_WORKERS``
        from the environment, defaulting to serial.

        Every completed source is checkpointed in the database
        (:class:`~repro.reliability.checkpoint.ImportJournal`); with
        ``resume=True`` (or a truthy ``REPRO_IMPORT_RESUME``) sources
        whose checkpoint matches the input file's content are skipped,
        so an import killed mid-run continues where it stopped instead
        of redoing finished work.  Skipped entries report zero counts,
        in manifest order like everything else.
        """
        if workers is None:
            workers = int(os.environ.get("REPRO_IMPORT_WORKERS", "1") or "1")
        if resume is None:
            resume = os.environ.get(RESUME_ENV_VAR, "").strip().lower() in (
                "1", "true", "yes", "on",
            )
        directory = Path(directory)
        manifest_path = directory / manifest_name
        entries = read_manifest(manifest_path)
        journal = ImportJournal(self.repository.db)
        with get_tracer().span(
            "pipeline.integrate_directory",
            directory=directory.name,
            sources=len(entries),
            workers=max(workers, 1),
        ):
            jobs, reports = self._plan_entries(
                directory, entries, journal, resume
            )
            if workers > 1 and len(jobs) > 1:
                self._integrate_entries_threaded(
                    jobs, reports, journal, workers
                )
            else:
                for index, entry, file_path, fingerprint in jobs:
                    reports[index] = self._integrate_checkpointed(
                        entry, file_path, fingerprint, journal
                    )
            # Refresh optimizer statistics once after the bulk load so SQL-
            # compiled views get index-driven join orders.
            with get_tracer().span("pipeline.analyze"):
                self.repository.db.analyze()
        return reports

    def _plan_entries(
        self,
        directory: Path,
        entries: "list[ManifestEntry]",
        journal: ImportJournal,
        resume: bool,
    ) -> tuple[list, list]:
        """Split manifest entries into work and already-done skips.

        Files are validated up front (a serial run discovers a missing
        file only when it reaches it; a resumed or parallel run must not
        start sibling imports it would then abandon).  Returns
        ``(jobs, reports)``: jobs as ``(index, entry, path, fingerprint)``
        tuples, and the manifest-ordered report list pre-filled with
        zero-count reports for skipped sources.
        """
        jobs = []
        reports: list[ImportReport | None] = [None] * len(entries)
        skipped = 0
        for index, entry in enumerate(entries):
            file_path = directory / entry.file
            if not file_path.exists():
                raise ImportError_(
                    f"manifest references missing file: {file_path}"
                )
            fingerprint = file_fingerprint(file_path)
            if resume and journal.completed(
                entry.source, entry.file, fingerprint, entry.release
            ):
                reports[index] = ImportReport(
                    source=self.repository.get_source(entry.source),
                    new_objects=0,
                    new_associations={},
                    new_target_objects={},
                    skipped_rows=0,
                )
                skipped += 1
                continue
            jobs.append((index, entry, file_path, fingerprint))
        if skipped:
            get_registry().counter("pipeline_sources_resumed_total").inc(skipped)
        return jobs, reports

    def _integrate_checkpointed(
        self,
        entry: "ManifestEntry",
        file_path: Path,
        fingerprint: str,
        journal: ImportJournal,
    ) -> ImportReport:
        """Integrate one manifest entry and checkpoint its completion.

        The checkpoint is written *after* the import transaction commits;
        a crash between the two re-imports just that source on resume,
        which the GAM duplicate elimination makes a no-op.  The row-id
        watermarks snapshotted *before* the import delimit its delta for
        incremental view maintenance (:mod:`repro.derived.refresh`).

        On the sharded engine, *re*-importing a known source runs inside
        an :meth:`~repro.gam.shards.ShardedGamDatabase.image_flip`: the
        import writes a staged copy of the source's shard while readers
        keep the live image, and the catalog flips atomically on commit
        (zero-downtime re-import, ``docs/storage.md``).
        """
        watermarks = journal.table_watermarks()
        db = self.repository.db
        if db.sharded and self.repository.find_source(entry.source) is not None:
            with db.image_flip(entry.source):
                report = self.integrate_file(
                    file_path, source_name=entry.source, release=entry.release
                )
        else:
            report = self.integrate_file(
                file_path, source_name=entry.source, release=entry.release
            )
        journal.record(
            entry.source,
            entry.file,
            fingerprint,
            entry.release,
            watermarks=watermarks,
        )
        return report

    def _integrate_entries_threaded(
        self,
        jobs: list,
        reports: "list[ImportReport | None]",
        journal: ImportJournal,
        workers: int,
    ) -> None:
        """Fan import jobs out over a thread pool, filling ``reports``
        in manifest order.  The first failing job's exception is
        re-raised, matching the serial contract.
        """
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=min(workers, len(jobs)),
            thread_name_prefix="repro-import",
        ) as executor:
            futures = [
                (
                    index,
                    executor.submit(
                        self._integrate_checkpointed,
                        entry,
                        file_path,
                        fingerprint,
                        journal,
                    ),
                )
                for index, entry, file_path, fingerprint in jobs
            ]
            for index, future in futures:
                reports[index] = future.result()


    def stage_directory(
        self,
        directory: str | Path,
        staging_dir: str | Path,
        manifest_name: str = "manifest.tsv",
    ) -> list[Path]:
        """Run only the Parse step: native files → staged ``.eav`` files.

        Decouples parsing from importing, as the paper's two-step design
        intends: the staged EAV output can be inspected, diffed and
        re-imported without re-parsing.  A new manifest referencing the
        ``.eav`` files is written into ``staging_dir``.
        """
        directory = Path(directory)
        staging_dir = Path(staging_dir)
        staging_dir.mkdir(parents=True, exist_ok=True)
        entries = read_manifest(directory / manifest_name)
        staged_paths = []
        staged_entries = []
        for entry in entries:
            parser = get_parser(entry.source)
            dataset = parser.parse(directory / entry.file, release=entry.release)
            staged_name = Path(entry.file).stem + ".eav"
            from repro.eav.io import write_eav

            write_eav(dataset, staging_dir / staged_name)
            staged_paths.append(staging_dir / staged_name)
            staged_entries.append(
                ManifestEntry(staged_name, entry.source, entry.release)
            )
        write_manifest(staging_dir / manifest_name, staged_entries)
        return staged_paths

    def import_staged_directory(
        self, staging_dir: str | Path, manifest_name: str = "manifest.tsv"
    ) -> list[ImportReport]:
        """Run only the Import step over a staged ``.eav`` directory."""
        staging_dir = Path(staging_dir)
        entries = read_manifest(staging_dir / manifest_name)
        reports = []
        for entry in entries:
            reports.append(self.integrate_eav_file(staging_dir / entry.file))
        self.repository.db.analyze()
        return reports


def _record_import(report: ImportReport) -> None:
    """Feed one import's outcome into the default metrics registry and
    the surrounding wide event (when an import scope is open)."""
    annotate_event(
        source=report.source.name,
        release=report.source.release,
        new_objects=report.new_objects,
        new_associations=report.total_associations,
        skipped_rows=report.skipped_rows,
    )
    registry = get_registry()
    registry.counter("pipeline_imports_total", source=report.source.name).inc()
    registry.counter("pipeline_objects_imported_total").inc(report.new_objects)
    registry.counter("pipeline_associations_imported_total").inc(
        report.total_associations
    )
    if report.skipped_rows:
        registry.counter("pipeline_rows_skipped_total").inc(report.skipped_rows)


def read_manifest(path: str | Path) -> list[ManifestEntry]:
    """Read an import manifest TSV."""
    path = Path(path)
    if not path.exists():
        raise ImportError_(f"no manifest at {path}")
    entries = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            cells = [cell.strip() for cell in line.split("\t")]
            if len(cells) < 2:
                raise ParseError(
                    f"{path}: manifest line needs 'file<TAB>source'",
                    line_number=line_number,
                )
            release = cells[2] if len(cells) > 2 and cells[2] else None
            entries.append(ManifestEntry(cells[0], cells[1], release))
    return entries


def write_manifest(path: str | Path, entries: list[ManifestEntry]) -> None:
    """Write an import manifest TSV (used by the synthetic data generator)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# file\tsource\trelease\n")
        for entry in entries:
            handle.write(f"{entry.file}\t{entry.source}\t{entry.release or ''}\n")
