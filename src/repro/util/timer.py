"""A tiny wall-clock timer used by benchmarks and the CLI."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as timer:
    ...     __ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None
