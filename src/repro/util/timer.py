"""Deprecated wall-clock timer — a thin shim over :mod:`repro.obs` spans.

``Timer`` predates the observability layer; new code should open a span on
the default tracer instead::

    from repro.obs import get_tracer

    with get_tracer().span("my.stage") as span:
        ...

The shim keeps the old ``elapsed`` contract for existing callers and, when
the default tracer is enabled, additionally records a ``util.timer`` span
so legacy timings show up in traces too.
"""

from __future__ import annotations

import time
import warnings

from repro.obs import get_tracer


class Timer:
    """Context manager measuring elapsed wall-clock seconds (deprecated).

    >>> with Timer() as timer:
    ...     __ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self, name: str = "util.timer") -> None:
        warnings.warn(
            "repro.util.Timer is deprecated; use repro.obs.get_tracer().span()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.name = name
        self.elapsed = 0.0
        self._start: float | None = None
        self._span_context = None

    def __enter__(self) -> "Timer":
        self._span_context = get_tracer().span(self.name)
        self._span_context.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None
        if self._span_context is not None:
            if len(exc_info) == 3:
                self._span_context.__exit__(*exc_info)
            else:
                self._span_context.__exit__(None, None, None)
            self._span_context = None
