"""Small shared utilities.

The deprecated ``Timer`` shim that used to live here was removed; time
code with spans on the default tracer instead::

    from repro.obs import get_tracer

    with get_tracer().span("my.stage") as span:
        ...
"""

__all__: list[str] = []
