"""Small shared utilities."""

from repro.util.timer import Timer

__all__ = ["Timer"]
