"""Semantic similarity over an annotation taxonomy.

An extension of the Section 5.2 methodology: once genes are classified
into the GO taxonomy, the taxonomy's structure supports *semantic
similarity* between terms (and between the genes they annotate) — the
standard information-content approach:

* the information content of a term is ``-log2`` of the fraction of the
  annotation corpus the term covers after subsumption rollup (rare,
  specific terms are informative; the root carries none);
* the Resnik similarity of two terms is the information content of their
  most informative common ancestor;
* gene functional similarity aggregates term similarities with the
  best-match average.

Everything is computed against a :class:`~repro.taxonomy.dag.Taxonomy`
and an annotation :class:`~repro.operators.mapping.Mapping`, i.e. directly
against GenMapper's stored knowledge.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.operators.mapping import Mapping
from repro.taxonomy.dag import Taxonomy


class SemanticIndex:
    """Precomputed information contents over one annotation corpus."""

    def __init__(self, taxonomy: Taxonomy, annotation: Mapping) -> None:
        # Imported lazily: repro.derived depends on repro.taxonomy.dag,
        # so a module-level import here would be circular.
        from repro.derived.subsumed import rollup_mapping

        self.taxonomy = taxonomy
        rolled = rollup_mapping(annotation, taxonomy)
        per_term: dict[str, set[str]] = {}
        for assoc in rolled:
            per_term.setdefault(assoc.target_accession, set()).add(
                assoc.source_accession
            )
        self._corpus_size = len(rolled.domain())
        self._term_counts = Counter(
            {term: len(objects) for term, objects in per_term.items()}
        )
        #: gene -> its direct annotation terms (for gene-level similarity).
        self._gene_terms: dict[str, set[str]] = {}
        for assoc in annotation:
            self._gene_terms.setdefault(assoc.source_accession, set()).add(
                assoc.target_accession
            )

    @property
    def corpus_size(self) -> int:
        """Number of annotated objects in the corpus."""
        return self._corpus_size

    def annotation_count(self, term: str) -> int:
        """Objects annotated with the term or anything it subsumes."""
        return self._term_counts.get(term, 0)

    def information_content(self, term: str) -> float:
        """``-log2(p(term))``; 0.0 for unannotated terms and empty corpora."""
        count = self.annotation_count(term)
        if count == 0 or self._corpus_size == 0:
            return 0.0
        probability = count / self._corpus_size
        return -math.log2(probability)

    def most_informative_common_ancestor(
        self, term1: str, term2: str
    ) -> str | None:
        """The common ancestor (incl. self) with the highest information
        content, or None when the terms share no ancestor."""
        if term1 not in self.taxonomy or term2 not in self.taxonomy:
            return None
        ancestors1 = self.taxonomy.ancestors(term1, include_self=True)
        ancestors2 = self.taxonomy.ancestors(term2, include_self=True)
        common = ancestors1 & ancestors2
        if not common:
            return None
        return max(
            sorted(common), key=lambda term: self.information_content(term)
        )

    def resnik(self, term1: str, term2: str) -> float:
        """Resnik similarity: IC of the most informative common ancestor."""
        ancestor = self.most_informative_common_ancestor(term1, term2)
        if ancestor is None:
            return 0.0
        return self.information_content(ancestor)

    def lin(self, term1: str, term2: str) -> float:
        """Lin similarity: normalized Resnik, in [0, 1]."""
        ic1 = self.information_content(term1)
        ic2 = self.information_content(term2)
        if ic1 == 0.0 or ic2 == 0.0:
            return 0.0
        return 2.0 * self.resnik(term1, term2) / (ic1 + ic2)

    def gene_similarity(self, gene1: str, gene2: str) -> float:
        """Best-match-average functional similarity of two genes.

        For each term of gene1, take its best Lin similarity against
        gene2's terms; average both directions.  Genes without
        annotations score 0.0.
        """
        terms1 = self._gene_terms.get(gene1, set())
        terms2 = self._gene_terms.get(gene2, set())
        if not terms1 or not terms2:
            return 0.0

        def best_average(from_terms: set[str], to_terms: set[str]) -> float:
            scores = [
                max(self.lin(t1, t2) for t2 in to_terms) for t1 in from_terms
            ]
            return sum(scores) / len(scores)

        return (
            best_average(terms1, terms2) + best_average(terms2, terms1)
        ) / 2.0

    def most_similar_genes(
        self, gene: str, candidates: list[str] | None = None, k: int = 5
    ) -> list[tuple[str, float]]:
        """The k functionally closest genes, best first."""
        if candidates is None:
            candidates = sorted(self._gene_terms)
        scored = [
            (candidate, self.gene_similarity(gene, candidate))
            for candidate in candidates
            if candidate != gene
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]
