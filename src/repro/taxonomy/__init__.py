"""Taxonomy utilities over intra-source IS_A structures."""

from repro.taxonomy.dag import Taxonomy
from repro.taxonomy.semantic import SemanticIndex

__all__ = ["SemanticIndex", "Taxonomy"]
