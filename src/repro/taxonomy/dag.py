"""Taxonomy structure: the IS_A DAG of a Network source.

GO, Enzyme and InterPro import intra-source Is-a relationships; this module
turns them into a queryable DAG with the operations that Subsumed
derivation (paper Section 3) and the Section 5.2 statistical rollups need:
ancestors, descendants, roots, leaves, depth and a topological order.

Terms may have several parents (GO is a DAG, not a tree).  Cycles are
rejected at construction time — an Is-a cycle is always a data error.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Iterable, Iterator

from repro.gam.errors import GamIntegrityError


class Taxonomy:
    """An immutable IS_A DAG over term accessions.

    Parameters
    ----------
    child_parent_pairs:
        ``(child, parent)`` pairs, exactly as stored by the Is-a mapping.
    """

    def __init__(self, child_parent_pairs: Iterable[tuple[str, str]]) -> None:
        self._parents: dict[str, set[str]] = defaultdict(set)
        self._children: dict[str, set[str]] = defaultdict(set)
        terms: set[str] = set()
        for child, parent in child_parent_pairs:
            if child == parent:
                raise GamIntegrityError(f"term {child!r} is its own parent")
            self._parents[child].add(parent)
            self._children[parent].add(child)
            terms.add(child)
            terms.add(parent)
        self._terms = terms
        self._order = self._topological_order()
        self._depths: dict[str, int] | None = None
        self._ancestor_sets: dict[str, frozenset[str]] | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: "object") -> "Taxonomy":
        """Build from an Is-a :class:`~repro.operators.mapping.Mapping`
        whose associations are oriented child → parent."""
        pairs = [
            (assoc.source_accession, assoc.target_accession) for assoc in mapping
        ]
        return cls(pairs)

    def _topological_order(self) -> list[str]:
        """Terms ordered parents-before-children; raises on cycles."""
        remaining_parents = {
            term: len(self._parents.get(term, ())) for term in self._terms
        }
        queue = deque(sorted(t for t, n in remaining_parents.items() if n == 0))
        order: list[str] = []
        while queue:
            term = queue.popleft()
            order.append(term)
            for child in sorted(self._children.get(term, ())):
                remaining_parents[child] -= 1
                if remaining_parents[child] == 0:
                    queue.append(child)
        if len(order) != len(self._terms):
            unresolved = sorted(t for t, n in remaining_parents.items() if n > 0)
            raise GamIntegrityError(
                f"IS_A structure contains a cycle involving {unresolved[:5]}"
            )
        return order

    # -- basic queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return term in self._terms

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    @property
    def terms(self) -> set[str]:
        """All term accessions."""
        return set(self._terms)

    def parents(self, term: str) -> set[str]:
        """Direct parents of a term."""
        self._require(term)
        return set(self._parents.get(term, ()))

    def children(self, term: str) -> set[str]:
        """Direct children of a term."""
        self._require(term)
        return set(self._children.get(term, ()))

    def roots(self) -> set[str]:
        """Terms without parents."""
        return {term for term in self._terms if not self._parents.get(term)}

    def leaves(self) -> set[str]:
        """Terms without children."""
        return {term for term in self._terms if not self._children.get(term)}

    def _require(self, term: str) -> None:
        if term not in self._terms:
            raise KeyError(f"term not in taxonomy: {term!r}")

    # -- closures ----------------------------------------------------------------

    def ancestors(self, term: str, include_self: bool = False) -> set[str]:
        """All terms reachable upward from ``term``.

        Served from the memoized transitive closure: the first call
        computes every term's ancestor set in one iterative pass along the
        topological order (parents before children), so rollups that ask
        for ancestors once per association — e.g.
        :func:`repro.derived.subsumed.rollup_mapping` over a large GO
        annotation mapping — no longer re-walk the DAG per association,
        and deep IS_A chains carry no recursion-depth risk.
        """
        self._require(term)
        closure = self._ancestor_closure()[term]
        if include_self:
            return set(closure) | {term}
        return set(closure)

    def _ancestor_closure(self) -> dict[str, frozenset[str]]:
        """Every term's full ancestor set, computed once, iteratively."""
        if self._ancestor_sets is None:
            sets: dict[str, frozenset[str]] = {}
            for term in self._order:
                parents = self._parents.get(term, ())
                mine: set[str] = set()
                for parent in parents:
                    mine.add(parent)
                    mine.update(sets[parent])
                sets[term] = frozenset(mine)
            self._ancestor_sets = sets
        return self._ancestor_sets

    def descendants(self, term: str, include_self: bool = False) -> set[str]:
        """All terms reachable downward from ``term`` (the *subsumed*
        terms of paper Section 3)."""
        self._require(term)
        return self._reach(term, self._children, include_self)

    @staticmethod
    def _reach(
        start: str, edges: dict[str, set[str]], include_self: bool
    ) -> set[str]:
        found: set[str] = {start} if include_self else set()
        queue = deque(edges.get(start, ()))
        while queue:
            term = queue.popleft()
            if term in found:
                continue
            found.add(term)
            queue.extend(edges.get(term, ()))
        return found

    def subsumed_pairs(self) -> Iterator[tuple[str, str]]:
        """All ``(ancestor, descendant)`` pairs — the transitive closure.

        This is exactly the association set of a Subsumed relationship.
        Computed bottom-up along the topological order so each term's
        descendant set is built once.
        """
        descendants: dict[str, set[str]] = {}
        for term in reversed(self._order):
            mine: set[str] = set()
            for child in self._children.get(term, ()):
                mine.add(child)
                mine.update(descendants[child])
            descendants[term] = mine
        for term in self._order:
            for descendant in sorted(descendants[term]):
                yield (term, descendant)

    # -- metrics -----------------------------------------------------------------

    def depth(self, term: str) -> int:
        """Length of the longest path from a root to ``term``."""
        self._require(term)
        if self._depths is None:
            depths: dict[str, int] = {}
            for node in self._order:
                parent_depths = [depths[p] for p in self._parents.get(node, ())]
                depths[node] = 1 + max(parent_depths) if parent_depths else 0
            self._depths = depths
        return self._depths[term]

    def max_depth(self) -> int:
        """Depth of the deepest term (0 for a taxonomy of isolated roots)."""
        if not self._terms:
            return 0
        return max(self.depth(term) for term in self._terms)

    def level(self, depth: int) -> set[str]:
        """All terms at exactly the given depth."""
        return {term for term in self._terms if self.depth(term) == depth}
